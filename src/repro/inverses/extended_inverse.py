"""Extended invertibility: the homomorphism property and chase-inverses.

Theorem 3.13: a schema mapping M specified by s-t tgds is extended
invertible iff it has the *homomorphism property* — for all source
instances, ``chase_M(I1) → chase_M(I2)`` implies ``I1 → I2``.

Theorem 3.17: for M and M' both specified by tgds, M' is an extended
inverse of M iff M' is a *chase-inverse* of M — every source instance I
is homomorphically equivalent to ``chase_M'(chase_M(I))``.

Both properties quantify over all source instances; the checkers below
evaluate them over a *canonical family* derived from M's premises (plus
any caller-supplied instances).  This family contains the "frozen
premise" instances that standard chase arguments use, in all
constant/null flavors and with pairwise variable identifications — in
particular, it contains every witness the paper's own proofs use
(e.g. ``{P(0)}`` vs ``{Q(0)}`` for Example 3.14 and ``{P(n1)}`` vs
``{Q(n2)}`` for Theorem 3.15(2)).  A failing verdict is a sound,
machine-verified refutation; a passing verdict means "no violation in the
tested family" (see :mod:`repro.inverses.verdicts`).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence

from ..homs.search import is_hom_equivalent, is_homomorphic
from ..instance import Instance
from ..mappings.schema_mapping import SchemaMapping
from ..terms import Const, Null, Value, Var
from .verdicts import CheckVerdict, Counterexample


def canonical_source_instances(
    mapping: SchemaMapping,
    max_pattern_variables: int = 4,
    include_pairs: bool = True,
    extra: Sequence[Instance] = (),
) -> List[Instance]:
    """The canonical test family for *mapping*'s source schema.

    For each dependency premise, instantiate its variables with every
    constant/null pattern (up to ``2^max_pattern_variables``), sharing a
    global constant pool ``c0, c1, ...`` so instances from different
    dependencies overlap on values; additionally identify each pair of
    premise variables (equality types of co-dimension 1), and — when
    *include_pairs* — union canonical instances of dependency pairs.
    The empty instance and caller-supplied *extra* instances are included.
    """
    family: List[Instance] = [Instance()]
    per_dep_allconst: List[Instance] = []

    for dep in mapping.dependencies:
        variables = sorted(
            {v for a in dep.premise for v in a.variables()}, key=lambda v: v.name
        )
        assignments: List[Dict[Var, Value]] = []
        n = len(variables)
        if n <= max_pattern_variables:
            for flags in itertools.product((False, True), repeat=n):
                assignments.append(
                    {
                        v: (Const(f"c{i}") if is_const else Null(f"X{i}"))
                        for i, (v, is_const) in enumerate(zip(variables, flags))
                    }
                )
        else:
            assignments.append({v: Const(f"c{i}") for i, v in enumerate(variables)})
            assignments.append({v: Null(f"X{i}") for i, v in enumerate(variables)})
        # Pairwise identifications, in constant and null flavors.
        for i, j in itertools.combinations(range(n), 2):
            for make in (lambda k: Const(f"c{k}"), lambda k: Null(f"X{k}")):
                assignment = {v: make(k) for k, v in enumerate(variables)}
                assignment[variables[j]] = assignment[variables[i]]
                assignments.append(assignment)

        first_allconst: Optional[Instance] = None
        for assignment in assignments:
            inst = Instance(a.instantiate(assignment) for a in dep.premise)
            family.append(inst)
            if first_allconst is None and inst.is_ground():
                first_allconst = inst
        if first_allconst is not None:
            per_dep_allconst.append(first_allconst)

        # Crossed two-copy instances: two instantiations of the premise
        # that overlap on all but one freshened position each.  These are
        # the shapes behind the paper's own refutations of extended
        # invertibility for lossy mappings (e.g. {P(a,b,d), P(e,b,c)} for
        # the decomposition of Example 1.1, and {P(1,1), P(0,0)} for the
        # component-split mapping of Example 6.7).
        if 0 < n <= max_pattern_variables:
            base = {v: Const(f"c{i}") for i, v in enumerate(variables)}
            copies: List[Dict[Var, Value]] = []
            for k in range(n):
                freshened = dict(base)
                freshened[variables[k]] = Const(f"f{k}")
                copies.append(freshened)
            # Diagonal instantiations (all variables equal).
            copies.append({v: Const("c0") for v in variables})
            copies.append({v: Const("c1") for v in variables})
            instances_of = [
                Instance(a.instantiate(assignment) for a in dep.premise)
                for assignment in copies
            ]
            for left, right in itertools.combinations(instances_of, 2):
                family.append(left.union(right))

    if include_pairs:
        for left, right in itertools.combinations(per_dep_allconst, 2):
            family.append(left.union(right))

    family.extend(extra)
    # Deduplicate, preserving a deterministic order.
    seen = set()
    unique: List[Instance] = []
    for inst in family:
        if inst not in seen:
            seen.add(inst)
            unique.append(inst)
    return unique


def homomorphism_property_counterexample(
    mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
) -> Optional[Counterexample]:
    """Search for a violation of the homomorphism property (Def. 3.12).

    Returns a verified counterexample pair ``(I1, I2)`` with
    ``chase_M(I1) → chase_M(I2)`` but ``I1 ↛ I2``, or None if the tested
    family exhibits none.
    """
    family = (
        list(instances) if instances is not None else canonical_source_instances(mapping)
    )
    chased = {inst: mapping.chase(inst) for inst in family}
    for left, right in itertools.permutations(family, 2):
        if is_homomorphic(chased[left], chased[right]) and not is_homomorphic(
            left, right
        ):
            def check(left=left, right=right) -> bool:
                return is_homomorphic(
                    mapping.chase(left), mapping.chase(right)
                ) and not is_homomorphic(left, right)

            return Counterexample(
                "homomorphism property fails: chase(I1) -> chase(I2) but I1 -/-> I2",
                (left, right),
                check,
            )
    return None


def is_extended_invertible(
    mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
) -> CheckVerdict:
    """Semi-decide extended invertibility via Theorem 3.13 ((1) ⟺ (4)).

    A False verdict is sound (the mapping is definitely not extended
    invertible); a True verdict means the homomorphism property held on
    the whole tested family.
    """
    family = (
        list(instances) if instances is not None else canonical_source_instances(mapping)
    )
    counterexample = homomorphism_property_counterexample(mapping, family)
    tested = len(family) * (len(family) - 1)
    if counterexample is None:
        return CheckVerdict(holds=True, tested=tested)
    return CheckVerdict(holds=False, tested=tested, counterexample=counterexample)


def round_trip(
    mapping: SchemaMapping, reverse_mapping: SchemaMapping, source: Instance
) -> Instance:
    """``chase_M'(chase_M(I))`` — the reverse-data-exchange round trip.

    Both mappings must be (possibly guarded) non-disjunctive tgds; the
    reverse chase here is the *standard* chase with the reverse
    dependencies, exactly as in Definition 3.16.
    """
    forward = mapping.chase(source)
    return reverse_mapping.chase(forward)


def is_chase_inverse(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
) -> CheckVerdict:
    """Semi-decide whether M' is a chase-inverse of M (Definition 3.16).

    Tests ``I ≡hom chase_M'(chase_M(I))`` over the canonical family of M
    (or the supplied instances).  By Theorem 3.17 this simultaneously
    semi-decides "M' is an extended inverse of M" for tgd-specified M'.
    """
    family = (
        list(instances) if instances is not None else canonical_source_instances(mapping)
    )
    for inst in family:
        recovered = round_trip(mapping, reverse_mapping, inst)
        if not is_hom_equivalent(inst, recovered):
            def check(inst=inst) -> bool:
                return not is_hom_equivalent(
                    inst, round_trip(mapping, reverse_mapping, inst)
                )

            return CheckVerdict(
                holds=False,
                tested=len(family),
                counterexample=Counterexample(
                    "chase-inverse fails: I and chase_M'(chase_M(I)) "
                    "are not homomorphically equivalent",
                    (inst, recovered),
                    check,
                ),
            )
    return CheckVerdict(holds=True, tested=len(family))


def compute_extended_inverse(
    mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
) -> Optional[SchemaMapping]:
    """Compute a syntactic extended inverse for a full-tgd mapping.

    By Proposition 4.16, an extended-invertible mapping's maximum
    extended recoveries *are* its extended inverses — so running the
    quasi-inverse algorithm on an extended-invertible full-tgd mapping
    yields an extended inverse (given by tgds with inequalities; for
    such mappings no pattern keeps a true disjunction).  Returns None
    when the mapping is not extended invertible (on the tested family) or
    is outside the algorithm's scope; otherwise the result is validated
    as a chase-inverse before being returned.
    """
    from .quasi_inverse import NotFullTgds, maximum_extended_recovery_for_full_tgds

    if not is_extended_invertible(mapping, instances=instances).holds:
        return None
    try:
        recovery = maximum_extended_recovery_for_full_tgds(mapping)
    except NotFullTgds:
        return None
    if recovery.is_disjunctive():
        # Should not happen for an extended-invertible mapping; refuse to
        # hand out something the chase-inverse contract cannot take.
        return None
    verdict = is_chase_inverse(mapping, recovery, instances=instances)
    if not verdict.holds:  # pragma: no cover - guards against checker gaps
        return None
    return recovery


def captures(
    mapping: SchemaMapping,
    target: Instance,
    source: Instance,
    candidates: Optional[Sequence[Instance]] = None,
) -> CheckVerdict:
    """Semi-decide "J captures I" (Definition 3.9).

    Condition (a) — ``J ∈ eSol_M(I)`` — is decided exactly via the chase.
    Condition (b) quantifies over all source instances K with
    ``J ∈ eSol_M(K)``; it is tested over the canonical family plus
    *candidates*.
    """
    family = canonical_source_instances(mapping, extra=tuple(candidates or ()))
    if not is_homomorphic(mapping.chase(source), target):
        return CheckVerdict(
            holds=False,
            tested=1,
            counterexample=Counterexample(
                "capturing condition (a) fails: J is not an extended solution for I",
                (source, target),
                lambda: not is_homomorphic(mapping.chase(source), target),
            ),
        )
    for candidate in family:
        if is_homomorphic(mapping.chase(candidate), target) and not is_homomorphic(
            candidate, source
        ):
            def check(candidate=candidate) -> bool:
                return is_homomorphic(
                    mapping.chase(candidate), target
                ) and not is_homomorphic(candidate, source)

            return CheckVerdict(
                holds=False,
                tested=len(family),
                counterexample=Counterexample(
                    "capturing condition (b) fails: J is an extended solution "
                    "for K but K -/-> I",
                    (candidate, source, target),
                    check,
                ),
            )
    return CheckVerdict(holds=True, tested=len(family))
