"""Verdict and counterexample types for the semi-decision checkers.

Several properties of schema mappings quantify over *all* source
instances (the homomorphism property, chase-inverses, extended
recoveries, universal-faithfulness, less-lossy).  The checkers in this
package decide them over an explicit, recorded family of test instances:

* a returned :class:`Counterexample` is a *sound refutation* — it carries
  the witnessing instances, and its :meth:`Counterexample.verify` method
  re-establishes the violation independently of the search that found it;
* a verdict with ``holds=True`` means *no violation in the tested family*
  (``likely_holds`` semantics), with the family size recorded so callers
  can judge the evidence.

DESIGN.md §5 explains why this is the right fidelity for reproducing a
theory paper: the paper's own refutations are tiny canonical instances,
all of which are contained in the default families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..instance import Instance


@dataclass(frozen=True)
class Counterexample:
    """A concrete violation of a universally quantified property.

    ``witnesses`` are the instances involved (e.g. the pair ``(I1, I2)``
    violating the homomorphism property); ``description`` says what failed;
    ``check`` re-verifies the violation from scratch.
    """

    description: str
    witnesses: Tuple[Instance, ...]
    check: Callable[[], bool] = field(compare=False, repr=False, default=lambda: True)

    def verify(self) -> bool:
        """Re-establish the violation independently."""
        return self.check()

    def __str__(self) -> str:
        parts = "; ".join(str(w) for w in self.witnesses)
        return f"{self.description} [witnesses: {parts}]"


@dataclass(frozen=True)
class CheckVerdict:
    """Outcome of a semi-decision check.

    ``holds`` is True when no violation was found in ``tested`` instances
    (or instance pairs); a False verdict always carries a verified
    :class:`Counterexample`.
    """

    holds: bool
    tested: int
    counterexample: Optional[Counterexample] = None

    def __post_init__(self) -> None:
        if not self.holds and self.counterexample is None:
            raise ValueError("a failing verdict must carry a counterexample")

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        if self.holds:
            return f"holds (no violation in {self.tested} tested cases)"
        return f"fails: {self.counterexample}"
