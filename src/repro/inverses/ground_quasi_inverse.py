"""The classical quasi-inverse notion of [FKPT, TODS 2008].

The paper's Section 5 algorithm originates in the *quasi-inverse*
framework, which relaxes the (ground) inverse equation ``M ∘ M' = Id``
by working modulo the source-equivalence

    ``I1 ∼_M I2  ⟺  Sol_M(I1) = Sol_M(I2)``

(two sources are indistinguishable when they admit exactly the same
solutions).  M' is a **quasi-inverse** of M when ``M ∘ M'`` and ``Id``
agree *modulo ∼_M in both coordinates*: writing ``R[∼]`` for
``{(I1, I2) : ∃ I1' ∼ I1, I2' ∼ I2 with (I1', I2') ∈ R}``, the
requirement is ``(M ∘ M')[∼] = Id[∼]`` on ground instances.

Decision procedures for tgd-specified M (ground instances):

* ``∼_M`` is exact: ``Sol(I1) = Sol(I2) ⟺ chase(I1) ≡hom chase(I2)``;
* ``(I1, I2) ∈ M ∘ M'`` is decided with the quotient-witness search of
  :func:`repro.inverses.ground.is_ground_recovery`;
* ``(I1, I2) ∈ Id[∼]`` is semi-decided through **saturation**: the
  maximal ∼-equivalent superset of ``I2`` within a candidate fact pool
  (facts whose addition leaves the chase hom-equivalent), probing
  ``I1 ⊆ saturate(I2)`` and quotient variants of ``I1``.  Sufficient
  witnesses only; the test suite pins the known classifications
  (Example 1.1's Σ' *is* a quasi-inverse of the decomposition mapping).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..homs.quotient import enumerate_quotients
from ..homs.search import is_hom_equivalent
from ..instance import Fact, Instance
from ..mappings.schema_mapping import SchemaMapping
from .verdicts import CheckVerdict, Counterexample


def sol_equivalent(mapping: SchemaMapping, left: Instance, right: Instance) -> bool:
    """``left ∼_M right`` — equal solution sets, decided via the chase."""
    if not left.is_ground() or not right.is_ground():
        raise ValueError("∼_M is a relation on ground instances")
    return is_hom_equivalent(mapping.chase(left), mapping.chase(right))


def _candidate_pool(instance: Instance, pool_from: Instance) -> List[Fact]:
    """Ground facts over *instance*'s relations with values from both."""
    values = sorted(
        set(instance.constants) | set(pool_from.constants),
        key=lambda c: str(c.value),
    )
    arities = {f.relation: f.arity for f in instance.facts | pool_from.facts}
    pool: List[Fact] = []
    for relation, arity in sorted(arities.items()):
        for combo in itertools.product(values, repeat=arity):
            candidate = Fact(relation, tuple(combo))
            if candidate not in instance.facts:
                pool.append(candidate)
    return pool


def saturate(
    mapping: SchemaMapping, instance: Instance, pool_from: Optional[Instance] = None,
    max_pool: int = 512,
) -> Instance:
    """The ∼-saturation of a ground instance within a bounded fact pool.

    Adds every pool fact whose inclusion leaves the chase homomorphically
    equivalent — i.e. the largest probed superset with the same solution
    set.  (Saturating one fact at a time is enough for monotone tgds:
    covered facts stay covered as more are added.)
    """
    pool = _candidate_pool(instance, pool_from or instance)
    if len(pool) > max_pool:
        raise ValueError(
            f"saturation pool has {len(pool)} candidate facts > {max_pool}"
        )
    base_chase = mapping.chase(instance)
    added = []
    for candidate in pool:
        widened = Instance(list(instance.facts) + added + [candidate])
        if is_hom_equivalent(mapping.chase(widened), base_chase):
            added.append(candidate)
    return Instance(list(instance.facts) + added)


def in_relaxed_identity(
    mapping: SchemaMapping, left: Instance, right: Instance
) -> bool:
    """Semi-decide ``(left, right) ∈ Id[∼_M]`` (sufficient witnesses).

    Witness searched: some ∼-preserving variant of *left* contained in
    the ∼-saturation of *right*.  ``left ⊆ saturate(right)`` is the
    primary probe; additionally ∼-equivalent shrinkings of *left*
    (dropping facts that do not change the chase) are tried.
    """
    saturated = saturate(mapping, right, pool_from=left)
    if left <= saturated:
        return True
    # Try ∼-equivalent shrinkings of `left` (redundant-fact removal).
    base_chase = mapping.chase(left)
    shrunk = left
    for f in sorted(left.facts, key=lambda f: f.sort_key()):
        candidate = Instance(shrunk.facts - {f})
        if is_hom_equivalent(mapping.chase(candidate), base_chase):
            shrunk = candidate
    return shrunk <= saturated


def is_quasi_inverse(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
    max_nulls: int = 8,
) -> CheckVerdict:
    """Semi-decide "M' is a quasi-inverse of M" on ground pairs.

    Checks both inclusions of ``(M ∘ M')[∼] = Id[∼]`` pointwise over the
    ordered pairs of the ground family:

    * ``⊇``: pairs in ``Id[∼]`` (witnessed by plain ``⊆`` — the sound
      subset) must be in ``(M ∘ M')[∼]`` — witnessed by ``M ∘ M'``
      membership of the pair itself (composition is already ∼-closed
      enough for tgd reverses on these probes);
    * ``⊆``: pairs in ``M ∘ M'`` must land in ``Id[∼]`` via
      :func:`in_relaxed_identity`.

    Refutations are probe-sound (a failing pair genuinely violates the
    probed inclusion); passes cover the tested family.
    """
    from .ground import ground_family

    family = ground_family(mapping, instances)
    checked = 0
    for left, right in itertools.product(family, repeat=2):
        checked += 1
        in_composition = _in_ground_composition(
            mapping, reverse_mapping, left, right, max_nulls=max_nulls
        )
        if left <= right and not in_composition:
            def check(left=left, right=right) -> bool:
                return left <= right and not _in_ground_composition(
                    mapping, reverse_mapping, left, right, max_nulls=max_nulls
                )

            return CheckVerdict(
                holds=False,
                tested=checked,
                counterexample=Counterexample(
                    "quasi-inverse ⊇ fails: pair in Id but not in (M ∘ M')[∼]",
                    (left, right),
                    check,
                ),
            )
        if in_composition and not in_relaxed_identity(mapping, left, right):
            def check(left=left, right=right) -> bool:
                return _in_ground_composition(
                    mapping, reverse_mapping, left, right, max_nulls=max_nulls
                ) and not in_relaxed_identity(mapping, left, right)

            return CheckVerdict(
                holds=False,
                tested=checked,
                counterexample=Counterexample(
                    "quasi-inverse ⊆ fails: pair in M ∘ M' but not in Id[∼]",
                    (left, right),
                    check,
                ),
            )
    return CheckVerdict(holds=True, tested=checked)


def _in_ground_composition(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    left: Instance,
    right: Instance,
    max_nulls: int = 8,
) -> bool:
    """``(left, right) ∈ M ∘ M'`` via the quotient-witness search."""
    chased = mapping.chase(left)
    return any(
        reverse_mapping.satisfies(quotient.instance, right)
        for quotient in enumerate_quotients(chased, max_nulls=max_nulls)
    )
