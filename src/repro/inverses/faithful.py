"""Universal-faithful schema mappings (Definition 6.1, Theorem 6.2).

M' (disjunctive tgds) is *universal-faithful* for M (s-t tgds) when for
every source instance I, the reverse chase result
``chase_M'(chase_M(I)) = {V1, ..., Vk}`` satisfies:

1. every ``Vl`` exports at least as much as I:  ``I →_M Vl``;
2. some ``Vi`` exports no more than I:  ``Vi →_M I``;
3. universality: for every I' with ``I →_M I'`` some ``Vj → I'``.

Theorem 6.2: for M' given by disjunctive tgds, universal-faithful for M
⟺ maximum extended recovery of M.  This gives the *procedural* handle on
maximum extended recoveries and is how the test suite validates the
quasi-inverse algorithm's output.

``chase_M'`` here is the quotient-branching reverse disjunctive chase
(see :mod:`repro.chase.disjunctive` for why the branching is needed over
instances with nulls).  Checking the three conditions on the *minimized*
branch antichain is complete: a kept dominator ``V' → V`` transfers both
a condition-(1) violation and a condition-(2)/(3) witness (the module
tests verify this reasoning on the paper's mappings).

Condition (3) quantifies over all I'; it is tested over an explicit
family (canonical instances of M, the input I, the branches themselves,
and caller extras) — semi-decision semantics as in
:mod:`repro.inverses.verdicts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..homs.search import is_homomorphic
from ..instance import Instance
from ..mappings.schema_mapping import SchemaMapping
from .extended_inverse import canonical_source_instances
from .recovery import in_arrow_m
from .verdicts import CheckVerdict, Counterexample


@dataclass(frozen=True)
class FaithfulReport:
    """Per-instance outcome of the three Definition 6.1 conditions."""

    source: Instance
    branches: Tuple[Instance, ...]
    condition1: bool
    condition2: bool
    condition3: bool
    condition3_violator: Optional[Instance] = None

    @property
    def ok(self) -> bool:
        return self.condition1 and self.condition2 and self.condition3


def universal_faithful_report(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    source: Instance,
    iprime_family: Sequence[Instance] = (),
    max_nulls: int = 8,
) -> FaithfulReport:
    """Evaluate Definition 6.1's conditions for one source instance.

    The condition-(3) family is *iprime_family* plus the source itself and
    the reverse-chase branches (each branch trivially satisfies
    ``I →_M V`` when condition 1 holds, making them useful probes).
    """
    target = mapping.chase(source)
    branches = tuple(reverse_mapping.reverse_chase(target, max_nulls=max_nulls))

    condition1 = all(in_arrow_m(mapping, source, branch) for branch in branches)
    condition2 = any(in_arrow_m(mapping, branch, source) for branch in branches)

    condition3 = True
    violator: Optional[Instance] = None
    probes = list(iprime_family) + [source] + list(branches)
    for candidate in probes:
        if not in_arrow_m(mapping, source, candidate):
            continue
        if not any(is_homomorphic(branch, candidate) for branch in branches):
            condition3 = False
            violator = candidate
            break

    return FaithfulReport(
        source=source,
        branches=branches,
        condition1=condition1,
        condition2=condition2,
        condition3=condition3,
        condition3_violator=violator,
    )


def exact_information_branch(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    source: Instance,
    max_nulls: int = 8,
) -> Optional[Instance]:
    """The recovered branch that exports *exactly* the source's information.

    When M' is universal-faithful for M, Definition 6.1's conditions (1)
    and (2) guarantee some branch ``Vi`` with ``Vi →_M I`` and
    ``I →_M Vi`` — the best possible recovery.  Returns that branch, or
    None when the reverse mapping does not deliver one (it is then not a
    maximum extended recovery of M, by Theorem 6.2).
    """
    branches = reverse_mapping.reverse_chase(
        mapping.chase(source), max_nulls=max_nulls
    )
    for branch in branches:
        if in_arrow_m(mapping, branch, source) and in_arrow_m(
            mapping, source, branch
        ):
            return branch
    return None


def is_universal_faithful(
    mapping: SchemaMapping,
    reverse_mapping: SchemaMapping,
    instances: Optional[Sequence[Instance]] = None,
    max_nulls: int = 8,
) -> CheckVerdict:
    """Semi-decide "M' is universal-faithful for M" over a family.

    The same canonical family serves as the test sources and as the
    condition-(3) probes.  A False verdict carries the offending source
    instance (and, for condition 3, the unreachable I').
    """
    family = (
        list(instances) if instances is not None else canonical_source_instances(mapping)
    )
    for inst in family:
        report = universal_faithful_report(
            mapping, reverse_mapping, inst, iprime_family=family, max_nulls=max_nulls
        )
        if not report.ok:
            failed = [
                name
                for name, good in (
                    ("1", report.condition1),
                    ("2", report.condition2),
                    ("3", report.condition3),
                )
                if not good
            ]
            witnesses: List[Instance] = [inst]
            if report.condition3_violator is not None:
                witnesses.append(report.condition3_violator)

            def check(inst=inst, family=family) -> bool:
                return not universal_faithful_report(
                    mapping,
                    reverse_mapping,
                    inst,
                    iprime_family=family,
                    max_nulls=max_nulls,
                ).ok

            return CheckVerdict(
                holds=False,
                tested=len(family),
                counterexample=Counterexample(
                    f"universal-faithfulness condition(s) {', '.join(failed)} "
                    "fail at this source instance",
                    tuple(witnesses),
                    check,
                ),
            )
    return CheckVerdict(holds=True, tested=len(family))
