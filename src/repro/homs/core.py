"""Cores of instances.

The *core* of an instance ``I`` is a minimal subinstance ``C ⊆ I`` such
that ``I → C`` (a minimal retract).  Cores are unique up to isomorphism and
give canonical representatives of homomorphic-equivalence classes: two
instances are hom-equivalent iff their cores are isomorphic.  The paper
works "up to homomorphic equivalence" throughout (e.g. chase-inverses
recover the source up to hom-equivalence), so cores are the natural
normal form for reporting recovered instances.

Algorithm: repeatedly look for a retraction into a proper subinstance
obtained by deleting one fact; replace the instance by the homomorphic
image; stop when no single-fact deletion admits a homomorphism.  (If any
proper retract exists, then a retract avoiding at least one particular
fact exists, so single-fact probing is complete.)
"""

from __future__ import annotations

from typing import Dict

from ..instance import Instance
from ..obs.tracer import current_tracer, maybe_span
from ..terms import Null, Value
from .search import find_homomorphism


def core(instance: Instance) -> Instance:
    """Return the core of *instance*.

    Ground instances are their own cores.  The result is a subinstance of
    the input (we retract rather than rename).
    """
    tracer = current_tracer()
    current = instance
    with maybe_span(tracer, "core", input_facts=len(instance)):
        while True:
            if current.is_ground():
                break
            shrunk = _shrink_once(current)
            if shrunk is None:
                break
            if tracer is not None:
                tracer.metrics.inc("core.folds")
            current = shrunk
    return current


def _shrink_once(instance: Instance) -> Instance | None:
    """Find a retraction into a proper subinstance, or None if core already."""
    facts = sorted(instance.facts, key=lambda f: f.sort_key())
    for f in facts:
        # Only facts containing nulls can be "folded away"; a ground fact
        # maps to itself under every homomorphism.
        if f.is_ground():
            continue
        smaller = Instance(instance.facts - {f})
        h = find_homomorphism(instance, smaller)
        if h is not None:
            return instance.substitute(dict(h))
    return None


def is_core(instance: Instance) -> bool:
    """True when the instance has no proper retract."""
    return _shrink_once(instance) is None


def retraction_to_core(instance: Instance) -> Dict[Null, Value]:
    """A homomorphism from *instance* onto its core.

    Composes the per-step retractions; the identity on nulls that survive.
    """
    mapping: Dict[Null, Value] = {n: n for n in instance.nulls}
    current = instance
    while True:
        if current.is_ground():
            return mapping
        found = None
        for f in sorted(current.facts, key=lambda f: f.sort_key()):
            if f.is_ground():
                continue
            smaller = Instance(current.facts - {f})
            h = find_homomorphism(current, smaller)
            if h is not None:
                found = h
                break
        if found is None:
            return mapping
        step: Dict[Null, Value] = dict(found)
        mapping = {
            n: (step.get(v, v) if isinstance(v, Null) else v)
            for n, v in mapping.items()
        }
        current = current.substitute(step)
