"""Homomorphisms between instances: search, equivalence, cores, quotients."""

from .search import (
    all_homomorphisms,
    find_homomorphism,
    is_hom_equivalent,
    is_homomorphic,
)
from .core import core
from .quotient import enumerate_quotients, Quotient
from .isomorphism import canonically_equivalent, find_isomorphism, is_isomorphic

__all__ = [
    "all_homomorphisms",
    "find_homomorphism",
    "is_hom_equivalent",
    "is_homomorphic",
    "core",
    "enumerate_quotients",
    "Quotient",
    "canonically_equivalent",
    "find_isomorphism",
    "is_isomorphic",
]
