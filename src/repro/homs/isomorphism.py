"""Instance isomorphism (null-renaming equivalence).

Two instances are *isomorphic* when some bijective renaming of nulls
(constants fixed) maps one exactly onto the other.  Isomorphism is
strictly finer than homomorphic equivalence and is the right notion for
comparing *cores*: cores of hom-equivalent instances are isomorphic, so
``core + isomorphism`` gives a decidable canonical comparison for the
paper's "up to homomorphic equivalence" statements.

The search reuses the homomorphism backtracking with an injectivity
constraint and a fact-count/profile fast path.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..instance import Instance
from ..terms import Const, Null, Value
from .core import core
from .search import homomorphisms


def _profiles_differ(left: Instance, right: Instance) -> bool:
    """Cheap invariants that isomorphic instances must share."""
    if len(left) != len(right):
        return True
    if len(left.nulls) != len(right.nulls):
        return True
    if left.constants != right.constants:
        return True
    left_counts = {rel: len(left.tuples(rel)) for rel in left.relation_names}
    right_counts = {rel: len(right.tuples(rel)) for rel in right.relation_names}
    return left_counts != right_counts


def isomorphisms(left: Instance, right: Instance) -> Iterator[Dict[Null, Value]]:
    """Yield the isomorphisms ``left → right`` as null bijections."""
    if _profiles_differ(left, right):
        return
    for h in homomorphisms(left, right):
        values = list(h.values())
        if len(set(values)) != len(values):
            continue  # not injective on nulls
        if any(isinstance(v, Const) for v in values):
            continue  # nulls must map to nulls for a bijection to exist
        if left.substitute(dict(h)) == right:
            yield h


def find_isomorphism(left: Instance, right: Instance) -> Optional[Dict[Null, Value]]:
    """One isomorphism, or None."""
    return next(isomorphisms(left, right), None)


def is_isomorphic(left: Instance, right: Instance) -> bool:
    """Null-renaming equivalence of two instances."""
    return find_isomorphism(left, right) is not None


def canonically_equivalent(left: Instance, right: Instance) -> bool:
    """Hom-equivalence decided through cores: ``core(left) ≅ core(right)``.

    Equivalent to two hom checks, but yields a *certificate* pair of
    isomorphic cores; preferable when the instances are large but fold to
    small cores.
    """
    return is_isomorphic(core(left), core(right))
