"""Quotients of instances by null identifications.

A *quotient* of an instance ``J`` identifies some of its nulls with each
other and/or with constants of ``J``.  Formally, a quotient is induced by
an idempotent substitution whose kernel partitions the nulls, each block
optionally anchored to one constant occurring in ``J``.

Why this matters: the disjunctive chase with inequalities, run over a
target instance that *contains nulls*, must consider that distinct nulls
may denote the same unknown value.  Without quotient branching, the
paper's own maximum extended recovery for Theorem 5.2 would fail
universal-faithfulness on ``J = {P'(n1, n2)}`` — the branch where
``n1 = n2`` (and the branch where both equal a constant) must exist for
condition (3) of Definition 6.1 to hold.  Enumerating all quotients of
``J`` enumerates exactly the possible kernels of homomorphisms out of
``J``, which is the completeness requirement.

The count grows like the Bell numbers in the number of nulls, so
:func:`enumerate_quotients` takes a ``max_nulls`` guard that raises
instead of silently exploding; benchmarks measure the growth (SB-3).

Limitation (documented in DESIGN.md): blocks are anchored only to
constants *occurring in J*.  Anchoring to fresh constants outside ``J``
could only be observed by a ``Constant(x)`` premise guard; the reverse
dependencies produced in this paper's setting (disjunctive tgds with
inequalities) have no such guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..instance import Instance
from ..terms import Const, Null, Value, value_sort_key


class QuotientExplosion(RuntimeError):
    """Raised when an instance has too many nulls to quotient exhaustively."""


@dataclass(frozen=True)
class Quotient:
    """One quotient: the substitution applied and the resulting instance."""

    substitution: Tuple[Tuple[Null, Value], ...]
    instance: Instance

    @property
    def mapping(self) -> Dict[Null, Value]:
        return dict(self.substitution)

    def is_identity(self) -> bool:
        return all(n == v for n, v in self.substitution)


def _partitions(items: Sequence[Null]) -> Iterator[List[List[Null]]]:
    """Enumerate set partitions (restricted-growth recursion)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in _partitions(rest):
        for block in partial:
            yield [blk + [first] if blk is block else list(blk) for blk in partial]
        yield [[first]] + [list(blk) for blk in partial]


def enumerate_quotients(
    instance: Instance,
    max_nulls: int = 8,
    anchor_constants: bool = True,
    extra_anchors: Sequence[Const] = (),
) -> Iterator[Quotient]:
    """Yield every quotient of *instance* (identity quotient included).

    Each quotient merges blocks of nulls, each block optionally anchored to
    a constant of the instance (plus any *extra_anchors*).  Raises
    :class:`QuotientExplosion` when the instance has more than *max_nulls*
    nulls.
    """
    nulls = sorted(instance.nulls)
    if len(nulls) > max_nulls:
        raise QuotientExplosion(
            f"instance has {len(nulls)} nulls > max_nulls={max_nulls}; "
            "raise the limit explicitly if the blowup is acceptable"
        )
    anchors: List[Optional[Const]] = [None]
    if anchor_constants:
        anchors += sorted(
            set(instance.constants) | set(extra_anchors), key=value_sort_key
        )

    for partition in _partitions(nulls):
        for anchor_choice in _anchor_choices(partition, anchors):
            substitution: Dict[Null, Value] = {}
            for block, anchor in zip(partition, anchor_choice):
                representative: Value = anchor if anchor is not None else min(block)
                for null in block:
                    substitution[null] = representative
            yield Quotient(
                tuple(sorted(substitution.items())),
                instance.substitute(substitution),
            )


def _anchor_choices(
    partition: List[List[Null]], anchors: List[Optional[Const]]
) -> Iterator[Tuple[Optional[Const], ...]]:
    """All ways to anchor each block to one of the anchors (or to none)."""
    if not partition:
        yield ()
        return
    for rest in _anchor_choices(partition[1:], anchors):
        for anchor in anchors:
            yield (anchor,) + rest


def count_quotients(null_count: int, constant_count: int) -> int:
    """Closed-form count of quotients, for benchmark reporting.

    Sum over partitions of the nulls of ``(constants + 1) ^ blocks``.
    """
    # Stirling-number recurrence: S(n, k) blocks, each with (c+1) anchors.
    c = constant_count + 1
    stirling = [[0] * (null_count + 1) for _ in range(null_count + 1)]
    stirling[0][0] = 1
    for n in range(1, null_count + 1):
        for k in range(1, n + 1):
            stirling[n][k] = k * stirling[n - 1][k] + stirling[n - 1][k - 1]
    return sum(stirling[null_count][k] * (c**k) for k in range(null_count + 1))
