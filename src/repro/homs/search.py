"""Homomorphism search between instances.

A homomorphism ``h : I1 → I2`` (Definition 3.1) maps every constant to
itself and every fact of ``I1``, pointwise through ``h``, to a fact of
``I2``.  The binary relation ``I1 → I2`` ("there is a homomorphism") is the
backbone of the whole paper: it *is* the extended identity schema mapping
``e(Id)``, and every extended notion is phrased through it.

The search is backtracking over the facts of ``I1`` with a
most-constrained-first ordering and per-relation candidate indexes on
``I2``.  Constants prune immediately since they must map to themselves.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from ..instance import Fact, Instance
from ..limits import Budget, current_budget
from ..obs.events import HomBacktrack
from ..obs.tracer import current_tracer
from ..terms import Const, Null, Value

#: Candidate extensions between cooperative budget checkpoints.  The
#: search has no partial-result semantics (half a homomorphism is
#: nothing), so exhaustion always raises; checking every extension would
#: put a clock read in the innermost loop, so we amortize.
_CHECK_EVERY = 256


def _fact_order(source: Instance, target) -> list:
    """Order source facts cheapest-first: few target candidates, many constants."""

    def key(f) -> tuple:
        candidates = len(target.tuples(f.relation))
        constants = sum(1 for v in f.values if isinstance(v, Const))
        return (candidates, -constants)

    return sorted(source.facts, key=key)


def _extend(
    fact_values: tuple, target_values: tuple, assignment: Dict[Null, Value]
) -> Optional[Dict[Null, Value]]:
    """Try mapping one source fact onto one target fact; return the delta."""
    delta: Dict[Null, Value] = {}
    for v, w in zip(fact_values, target_values):
        if isinstance(v, Const):
            if v != w:
                return None
        else:
            known = assignment.get(v, delta.get(v))
            if known is None:
                delta[v] = w
            elif known != w:
                return None
    return delta


def homomorphisms(
    source: Instance,
    target,
    seed: Optional[Mapping[Null, Value]] = None,
    ordering: str = "constrained",
    budget: Optional[Budget] = None,
) -> Iterator[Dict[Null, Value]]:
    """Yield every homomorphism from *source* to *target*.

    Homomorphisms are returned as ``{null: value}`` maps over the nulls of
    *source* (constants are implicitly fixed).  *seed* pre-commits some
    nulls — useful for extending partial homomorphisms.

    *target* may be any :class:`~repro.logic.matching.MatchSource`, not
    just an :class:`~repro.instance.Instance`: candidate probing uses
    ``tuples``/``tuples_at``, so the chase's live
    :class:`~repro.logic.delta.TriggerIndex` works directly — hom
    search over a mid-chase state costs no snapshot.  Sources without
    ``tuples_at`` fall back to full-relation scans.

    *ordering* selects the fact-processing order: ``"constrained"``
    (default) sorts most-constrained-first; ``"naive"`` takes an arbitrary
    deterministic order — kept for the D3 ablation benchmark, not for use.

    The search honors a cooperative *budget* (explicit, or this thread's
    ambient :func:`repro.limits.budget_scope`): every few hundred
    candidate extensions it checks cancellation and the deadline, and on
    exhaustion raises the budget's typed error — there is no partial
    homomorphism to return.  Without a budget the check costs nothing.
    """
    if ordering == "constrained":
        ordered = _fact_order(source, target)
    elif ordering == "naive":
        ordered = sorted(source.facts, key=Fact.sort_key)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    assignment: Dict[Null, Value] = dict(seed) if seed else {}
    tracer = current_tracer()
    tracing = tracer is not None
    if budget is None:
        budget = current_budget()
    governed = budget is not None
    probes = [0]
    rejected = [0]
    lookup = getattr(target, "tuples_at", None)

    def candidates(f: Fact):
        """Index-backed candidate tuples: probe the smallest bucket among
        the positions already fixed (constants or assigned nulls)."""
        if lookup is None:
            return target.tuples(f.relation)
        best = None
        for position, v in enumerate(f.values):
            value = v if isinstance(v, Const) else assignment.get(v)
            if value is None:
                continue
            bucket = lookup(f.relation, position, value)
            if best is None or len(bucket) < len(best):
                best = bucket
                if not best:
                    break
        if best is None:
            return target.tuples(f.relation)
        return best

    def search(index: int) -> Iterator[Dict[Null, Value]]:
        if index == len(ordered):
            yield dict(assignment)
            return
        f = ordered[index]
        for values in candidates(f):
            if governed:
                probes[0] += 1
                if probes[0] % _CHECK_EVERY == 0:
                    if budget.checkpoint("hom_search") is not None:
                        budget.raise_exhausted()
            delta = _extend(f.values, values, assignment)
            if delta is None:
                if tracing:
                    rejected[0] += 1
                continue
            assignment.update(delta)
            yield from search(index + 1)
            for null in delta:
                del assignment[null]

    if not tracing:
        yield from search(0)
        return
    # Traced: summarize the whole search as one HomBacktrack event, also
    # when the caller abandons the generator after the first solution
    # (the ``finally`` runs on generator close).
    found = False
    try:
        for h in search(0):
            found = True
            yield h
    finally:
        tracer.emit(
            HomBacktrack(
                backtracks=rejected[0],
                found=found,
                source_size=len(source),
                target_size=len(target),
            )
        )


def find_homomorphism(
    source: Instance,
    target: Instance,
    seed: Optional[Mapping[Null, Value]] = None,
) -> Optional[Dict[Null, Value]]:
    """Return one homomorphism ``source → target``, or None."""
    return next(homomorphisms(source, target, seed), None)


def all_homomorphisms(source: Instance, target: Instance) -> list:
    """All homomorphisms as a list (beware: can be exponential)."""
    return list(homomorphisms(source, target))


def is_homomorphic(source: Instance, target: Instance) -> bool:
    """The relation ``source → target`` of the paper."""
    return find_homomorphism(source, target) is not None


def is_hom_equivalent(left: Instance, right: Instance) -> bool:
    """Homomorphic equivalence: ``left → right`` and ``right → left``."""
    return is_homomorphic(left, right) and is_homomorphic(right, left)


def apply_homomorphism(h: Mapping[Null, Value], instance: Instance) -> Instance:
    """The image ``h(I)`` of an instance under a (partial) null mapping."""
    return instance.substitute(dict(h))


def verify_homomorphism(
    h: Mapping[Null, Value], source: Instance, target: Instance
) -> bool:
    """Independent check that *h* really is a homomorphism source → target.

    Used by the test suite to validate search results and by the
    counterexample objects of the semi-decision checkers.
    """
    for f in source.facts:
        image = f.substitute(dict(h))
        if image not in target.facts:
            return False
    return True
