"""Counters and duration histograms for the observability subsystem.

A :class:`MetricsRegistry` is a flat namespace of named counters and
named histograms.  The tracer feeds it automatically (event counts,
span durations) and instrumentation points may record domain metrics
directly.  Registries from worker processes merge losslessly into the
parent's (:meth:`MetricsRegistry.merge`), which is what makes
``chase_many``/``reverse_many`` traces additive across the process
pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Histogram:
    """A streaming summary of observed values (count/sum/min/max).

    Deliberately bucket-free: the consumers here want totals and means
    (e.g. mean span duration), and bucket-free summaries merge exactly
    across workers with no binning-choice coupling.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }


class MetricsRegistry:
    """Named counters + named histograms, mergeable across workers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    # -- merging --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's measurements into this one."""
        for name, amount in other._counters.items():
            self.inc(name, amount)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(hist)

    def merge_payload(self, payload: dict) -> None:
        """Merge an :meth:`export_payload` snapshot (cross-process form)."""
        for name, amount in payload.get("counters", {}).items():
            self.inc(name, amount)
        for name, data in payload.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(
                Histogram(
                    count=data["count"],
                    total=data["total"],
                    min=data["min"] if data["count"] else float("inf"),
                    max=data["max"] if data["count"] else float("-inf"),
                )
            )

    def export_payload(self) -> dict:
        """A picklable/JSON-safe snapshot that round-trips via
        :meth:`merge_payload` (raw totals, no rounding)."""
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for name, h in self._histograms.items()
            },
        }

    def render(self) -> str:
        """A compact human-readable dump (the CLI's stats footer)."""
        lines = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"  {name:<32} {value}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(
                f"  {name:<32} n={hist.count} total={hist.total:.4f}s "
                f"mean={hist.mean * 1000:.3f}ms"
            )
        return "\n".join(lines)
