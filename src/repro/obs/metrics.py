"""Counters and duration histograms for the observability subsystem.

A :class:`MetricsRegistry` is a flat namespace of named counters and
named histograms.  The tracer feeds it automatically (event counts,
span durations) and instrumentation points may record domain metrics
directly.  Registries from worker processes merge losslessly into the
parent's (:meth:`MetricsRegistry.merge`), which is what makes
``chase_many``/``reverse_many`` traces additive across the process
pool.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Histogram:
    """A streaming summary of observed values (count/sum/min/max).

    Deliberately bucket-free: the consumers here want totals and means
    (e.g. mean span duration), and bucket-free summaries merge exactly
    across workers with no binning-choice coupling.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another summary in (exact, order-independent)."""
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, float]:
        """The summary as a JSON-ready dict (values rounded)."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }


#: Fixed logarithmic bucket upper bounds (seconds): 1 µs to 100 s with a
#: half-decade (~3.16×) step.  Fixed at module level so every worker bins
#: identically — the precondition for exact cross-process merging.
LOG_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 2.0) for exponent in range(-12, 5)
)


@dataclass
class BucketedHistogram:
    """A histogram over the fixed logarithmic buckets above.

    Unlike the bucket-free :class:`Histogram`, this one keeps a count
    per bucket so it can render the cumulative ``le`` series that the
    OpenMetrics/Prometheus exposition format requires.  Because the
    bucket bounds are a module-level constant (never data-dependent),
    two bucketed histograms built in different processes merge
    *exactly*: the merge is element-wise integer addition, independent
    of observation order or interleaving.
    """

    counts: List[int] = field(
        default_factory=lambda: [0] * (len(LOG_BUCKET_BOUNDS) + 1)
    )
    total: float = 0.0

    def observe(self, value: float) -> None:
        """Bin one observation and add it to the running sum."""
        self.counts[bisect_left(LOG_BUCKET_BOUNDS, value)] += 1
        self.total += value

    @property
    def count(self) -> int:
        """Total number of observations across all buckets."""
        return sum(self.counts)

    def merge(self, other: "BucketedHistogram") -> None:
        """Element-wise bucket addition (exact across processes)."""
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, ``+Inf`` last."""
        running = 0
        series: List[Tuple[float, int]] = []
        for bound, count in zip(LOG_BUCKET_BOUNDS, self.counts):
            running += count
            series.append((bound, running))
        series.append((float("inf"), running + self.counts[-1]))
        return series

    def as_dict(self) -> dict:
        """Raw bucket counts + sum, the cross-process payload form."""
        return {"counts": list(self.counts), "total": self.total}


_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def openmetrics_name(name: str, prefix: str = "repro_") -> str:
    """A raw metric name sanitized to the OpenMetrics charset."""
    cleaned = _METRIC_NAME.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def _format_float(value: float) -> str:
    """A float rendered without exponent noise (OpenMetrics-friendly)."""
    if value == float("inf"):
        return "+Inf"
    text = repr(round(value, 9))
    return text


class MetricsRegistry:
    """Named counters + named histograms, mergeable across workers."""

    def __init__(self) -> None:
        """Start empty; counters and histograms appear on first use."""
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._bucketed: Dict[str, BucketedHistogram] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* (created at zero on first use)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one duration under *name* (summary + log buckets)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)
        bucketed = self._bucketed.get(name)
        if bucketed is None:
            bucketed = self._bucketed[name] = BucketedHistogram()
        bucketed.observe(value)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The bucket-free summary for *name*, if anything was observed."""
        return self._histograms.get(name)

    def bucketed(self, name: str) -> Optional[BucketedHistogram]:
        """The log-bucketed series for *name*, if anything was observed."""
        return self._bucketed.get(name)

    @property
    def counters(self) -> Dict[str, int]:
        """A snapshot copy of every counter."""
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """A snapshot copy of every bucket-free summary."""
        return dict(self._histograms)

    def as_dict(self) -> dict:
        """Sorted, rounded dict form (the JSON/debug rendering)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    # -- merging --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's measurements into this one."""
        for name, amount in other._counters.items():
            self.inc(name, amount)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(hist)
        for name, bucketed in other._bucketed.items():
            target = self._bucketed.get(name)
            if target is None:
                target = self._bucketed[name] = BucketedHistogram()
            target.merge(bucketed)

    def merge_payload(self, payload: dict) -> None:
        """Merge an :meth:`export_payload` snapshot (cross-process form)."""
        for name, amount in payload.get("counters", {}).items():
            self.inc(name, amount)
        for name, data in payload.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.merge(
                Histogram(
                    count=data["count"],
                    total=data["total"],
                    min=data["min"] if data["count"] else float("inf"),
                    max=data["max"] if data["count"] else float("-inf"),
                )
            )
        for name, data in payload.get("bucketed", {}).items():
            target = self._bucketed.get(name)
            if target is None:
                target = self._bucketed[name] = BucketedHistogram()
            target.merge(
                BucketedHistogram(
                    counts=list(data["counts"]), total=data["total"]
                )
            )

    def export_payload(self) -> dict:
        """A picklable/JSON-safe snapshot of the registry.

        Round-trips via :meth:`merge_payload` (raw totals, no
        rounding)."""
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for name, h in self._histograms.items()
            },
            "bucketed": {
                name: b.as_dict() for name, b in self._bucketed.items()
            },
        }

    # -- exposition -----------------------------------------------------

    def to_openmetrics(self, prefix: str = "repro_") -> str:
        """The registry in OpenMetrics text exposition format.

        Counters render as ``<name>_total`` counter families; observed
        series render as histogram families with the fixed-log-bucket
        cumulative ``le`` series plus ``_count``/``_sum``, so standard
        Prometheus tooling can compute quantiles.  The output ends with
        the mandatory ``# EOF`` terminator.
        """
        lines: List[str] = []
        for name, value in sorted(self._counters.items()):
            metric = openmetrics_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"# HELP {metric} repro counter {name}")
            lines.append(f"{metric}_total {value}")
        for name in sorted(self._bucketed):
            bucketed = self._bucketed[name]
            metric = openmetrics_name(name, prefix)
            lines.append(f"# TYPE {metric} histogram")
            lines.append(f"# UNIT {metric} seconds")
            lines.append(f"# HELP {metric} repro histogram {name}")
            for bound, cumulative in bucketed.cumulative():
                lines.append(
                    f'{metric}_bucket{{le="{_format_float(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{metric}_count {bucketed.count}")
            lines.append(f"{metric}_sum {_format_float(bucketed.total)}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """A compact human-readable dump (the CLI's stats footer)."""
        lines = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"  {name:<32} {value}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(
                f"  {name:<32} n={hist.count} total={hist.total:.4f}s "
                f"mean={hist.mean * 1000:.3f}ms"
            )
        return "\n".join(lines)
