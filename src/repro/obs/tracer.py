"""The event bus: tracer, spans, and the ambient current tracer.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Instrumentation points fetch
   the ambient tracer once per operation (:func:`current_tracer`, a
   plain module-global read) and guard every inner-loop emission with
   ``if tracer is not None``.  With no tracer installed — the default —
   the instrumented code paths differ from uninstrumented ones by a
   handful of ``None`` checks; ``benchmarks/bench_tracing_overhead.py``
   enforces the ≤2% budget against an uninstrumented reference chase.
2. **Mergeable across workers.**  A tracer snapshots to a picklable
   :class:`TraceState`; the engine's batch paths run each worker under
   a private tracer and :meth:`Tracer.absorb` the states on join, so a
   fanned-out ``chase_many`` produces one coherent trace.
3. **One object, three sinks.**  Emitted events land in the event list
   (for the JSONL exporter), the metrics registry (event counters +
   span-duration histograms), and the provenance graph — all owned by
   the tracer, no global registries.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .context import current_context
from .events import TraceEvent
from .metrics import MetricsRegistry
from .provenance import ProvenanceGraph


@dataclass
class Span:
    """A named, timed section of work with parent linkage.

    ``trace_id``/``request_id`` carry the ambient
    :class:`~repro.obs.context.TraceContext` active when the span was
    opened (empty outside a request), so spans from different
    processes serving the same request correlate."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0
    end: Optional[float] = None
    trace_id: str = ""
    request_id: str = ""

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class TraceState:
    """A picklable snapshot of a tracer, for cross-process merging."""

    events: Tuple[TraceEvent, ...]
    spans: Tuple[Span, ...]
    metrics: dict


class Tracer:
    """The observability session object: event bus + spans + sinks.

    ``enabled=False`` degrades every method to a cheap no-op (for
    keeping one code path while toggling collection); ``provenance=False``
    skips the provenance graph (events and metrics only).
    Thread-safe: the engine's thread-pool fan-out and instrumented
    library code may emit concurrently.
    """

    def __init__(self, enabled: bool = True, provenance: bool = True) -> None:
        """An empty tracer; *provenance* also builds the derivation graph."""
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._provenance: Optional[ProvenanceGraph] = (
            ProvenanceGraph() if provenance else None
        )
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._clock = time.perf_counter

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Record one typed event into all three sinks."""
        if not self.enabled:
            return
        with self._lock:
            self.events.append(event)
            self.metrics.inc(f"events.{event.kind}")
            if self._provenance is not None:
                self._provenance.record(event)

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a timed span; nests via a per-thread span stack."""
        if not self.enabled:
            yield None
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        context = current_context()
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=stack[-1].span_id if stack else None,
                attrs=dict(attrs),
                trace_id=context.trace_id if context is not None else "",
                request_id=context.request_id if context is not None else "",
            )
            self.spans.append(span)
        stack.append(span)
        span.start = self._clock()
        try:
            yield span
        finally:
            span.end = self._clock()
            stack.pop()
            with self._lock:
                self.metrics.observe(f"span.{name}", span.duration)

    def record_span(
        self, name: str, start: float, end: float, **attrs
    ) -> Optional[Span]:
        """Record an already-timed span under the current span stack.

        For instrumentation that measures a block itself (the chase
        profiler's per-dependency cells) rather than wrapping it in the
        :meth:`span` context manager.  Parent linkage and context
        stamping match :meth:`span`."""
        if not self.enabled:
            return None
        stack = getattr(self._local, "stack", None)
        context = current_context()
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=stack[-1].span_id if stack else None,
                attrs=dict(attrs),
                start=start,
                end=end,
                trace_id=context.trace_id if context is not None else "",
                request_id=context.request_id if context is not None else "",
            )
            self.spans.append(span)
            self.metrics.observe(f"span.{name}", span.duration)
        return span

    def current_span_id(self) -> Optional[int]:
        """The id of this thread's innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    # Sinks and lifecycle
    # ------------------------------------------------------------------

    @property
    def provenance(self) -> Optional[ProvenanceGraph]:
        """The provenance graph built from the emitted events."""
        return self._provenance

    def export_state(self) -> TraceState:
        """Snapshot everything into a picklable :class:`TraceState`."""
        with self._lock:
            return TraceState(
                events=tuple(self.events),
                spans=tuple(self.spans),
                metrics=self.metrics.export_payload(),
            )

    def absorb(
        self, state: TraceState, parent_id: Optional[int] = None
    ) -> None:
        """Merge a worker's :class:`TraceState` into this tracer.

        Events re-feed the provenance graph; span ids are re-based so
        merged span trees stay internally consistent.  *parent_id* (an
        id already in **this** tracer, e.g. the batch span the worker
        was fanned out under) re-parents the worker's root spans, so a
        cross-process request stitches into one tree instead of
        leaving orphaned roots."""
        if not self.enabled:
            return
        with self._lock:
            base = 0
            for span in state.spans:
                base = max(base, span.span_id)
            offset = next(self._ids)
            for _ in range(base):
                next(self._ids)
            for span in state.spans:
                self.spans.append(
                    Span(
                        name=span.name,
                        span_id=span.span_id + offset,
                        parent_id=(
                            span.parent_id + offset
                            if span.parent_id is not None
                            else parent_id
                        ),
                        attrs=dict(span.attrs),
                        start=span.start,
                        end=span.end,
                        trace_id=getattr(span, "trace_id", ""),
                        request_id=getattr(span, "request_id", ""),
                    )
                )
            self.metrics.merge_payload(state.metrics)
            for event in state.events:
                self.events.append(event)
                if self._provenance is not None:
                    self._provenance.record(event)

    def clear(self) -> None:
        """Drop all recorded events, spans, metrics, and provenance."""
        with self._lock:
            self.events.clear()
            self.spans.clear()
            self.metrics = MetricsRegistry()
            if self._provenance is not None:
                self._provenance = ProvenanceGraph()


# ----------------------------------------------------------------------
# The ambient (module-level) tracer
# ----------------------------------------------------------------------

_current: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is off (the default).

    Instrumentation points call this once per operation and keep the
    result in a local — the disabled-path cost is one global read."""
    tracer = _current
    if tracer is not None and not tracer.enabled:
        return None
    return tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install *tracer* as the ambient tracer; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Scope an ambient tracer: ``with tracing() as t: ... t.events``."""
    if tracer is None:
        tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str, **attrs):
    """``tracer.span(...)`` when tracing, a no-op context otherwise."""
    if tracer is None or not tracer.enabled:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span
