"""Ambient trace context: one identity for a request across processes.

A :class:`TraceContext` names one logical request — a CLI invocation or
one ``POST /v1/*`` call — with a ``trace_id`` (always freshly minted)
and a ``request_id`` (client-supplied via the ``X-Repro-Request-Id``
header, or minted).  Entry points install it ambiently
(:func:`context_scope`); instrumentation reads it back cheaply
(:func:`current_context`, a thread-local read) and stamps it onto
spans, :class:`~repro.obs.sinks.OpRecord` telemetry, registry rows,
and exhaustion diagnoses, so every artifact a request leaves behind is
correlatable.

The context is a frozen, picklable dataclass with a JSON-safe
``to_dict``/``from_dict`` round trip: the engine's batch fan-out and
the service's WarmPool both serialize it into worker payloads, and the
worker restores it ambiently before running the task — the same
request id therefore appears on records produced on both sides of a
process boundary.

The ambient slot is **thread-local** (service handler threads each
carry their own request), mirroring :func:`repro.limits.budget_scope`
rather than the process-global ambient tracer.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceContext",
    "context_scope",
    "current_context",
    "mint_context",
    "set_context",
]


@dataclass(frozen=True)
class TraceContext:
    """The identity of one logical request.

    ``trace_id`` is minted fresh at the entry point; ``request_id`` is
    the client-visible correlation id (honored from
    ``X-Repro-Request-Id`` when supplied); ``parent_span`` optionally
    names the span id this context was forked under, so workers can
    stitch their root spans back to the caller's tree.
    """

    trace_id: str
    request_id: str
    parent_span: Optional[int] = None

    def to_dict(self) -> dict:
        """A JSON-safe projection for payloads and HTTP bodies."""
        out = {"trace_id": self.trace_id, "request_id": self.request_id}
        if self.parent_span is not None:
            out["parent_span"] = self.parent_span
        return out

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["TraceContext"]:
        """Rebuild a context from :meth:`to_dict` output (``None``-safe)."""
        if not data:
            return None
        return cls(
            trace_id=str(data.get("trace_id", "")),
            request_id=str(data.get("request_id", "")),
            parent_span=data.get("parent_span"),
        )

    def fork(self, parent_span: Optional[int]) -> "TraceContext":
        """The same request identity, re-anchored under *parent_span*."""
        return TraceContext(
            trace_id=self.trace_id,
            request_id=self.request_id,
            parent_span=parent_span,
        )


def mint_context(request_id: Optional[str] = None) -> TraceContext:
    """A fresh context; *request_id* is honored when the caller has one."""
    trace_id = uuid.uuid4().hex[:16]
    if request_id is None or not str(request_id).strip():
        request_id = f"req-{trace_id[:12]}"
    return TraceContext(trace_id=trace_id, request_id=str(request_id).strip())


_local = threading.local()


def current_context() -> Optional[TraceContext]:
    """The ambient context of this thread, or ``None`` outside a request."""
    return getattr(_local, "context", None)


def set_context(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install *context* ambiently; returns the previous one."""
    previous = getattr(_local, "context", None)
    _local.context = context
    return previous


@contextmanager
def context_scope(context: Optional[TraceContext]):
    """Scope an ambient context: ``with context_scope(ctx): ...``.

    ``context=None`` is allowed and scopes "no context" (used by workers
    handling requests that arrived without one).
    """
    previous = set_context(context)
    try:
        yield context
    finally:
        set_context(previous)
