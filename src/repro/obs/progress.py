"""Live progress reporting for long-running governed operations.

A multi-minute disjunctive chase is a black box until it returns.  The
:class:`ProgressReporter` turns the cooperative :class:`repro.limits.
Budget` checkpoints the chase already executes — every fixpoint round,
every charge after a firing — into a throttled heartbeat stream,
surfaced by the CLI's ``--progress`` flag as a stderr ticker::

    progress: chase round 12 steps=8412 facts=20310 elapsed=3.4s

Design constraints mirror the tracer's:

* **Near-zero overhead when off.**  With no reporter installed (the
  default) a budget checkpoint pays exactly one ``is None`` slot read.
  ``benchmarks/bench_sink_overhead.py`` holds the ≤2% line.
* **Throttled when on.**  Heartbeats arrive per chase *step*; the
  reporter keeps the latest gauges and writes at most one line per
  ``interval`` seconds (monotonic clock), so a hot loop cannot flood
  stderr.
* **Ambient, like the tracer.**  ``with progress_scope(reporter): ...``
  installs a process-wide reporter that freshly created budgets pick
  up; thread-pool workers share it, process-pool workers (fresh module
  state) simply run silent.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Dict, Optional, TextIO


class ProgressReporter:
    """Collects heartbeat gauges and renders a throttled stderr ticker.

    ``stream=None`` keeps the reporter silent (gauges still accumulate
    — useful for tests and for embedding).  On a TTY the ticker
    redraws one line with ``\\r``; otherwise each report is a plain
    newline-terminated line.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval: float = 0.2,
        clock=time.monotonic,
        label: str = "progress",
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.stream = stream
        self.interval = interval
        self.label = label
        self._clock = clock
        self._started_at: Optional[float] = None
        self._next_at = float("-inf")
        self._where = ""
        self._rounds = 0
        self._steps = 0
        self._gauges: Dict[str, int] = {}
        self.branches_opened = 0
        self.branches_forked = 0
        self.branches_closed = 0
        self.close_reasons: Dict[str, int] = {}
        self.ticks = 0
        self._line_open = False

    # -- fed from Budget checkpoint sites ------------------------------

    def heartbeat(
        self,
        where: str,
        rounds: int,
        steps: int,
        facts: Optional[int] = None,
        nulls: Optional[int] = None,
        branches: Optional[int] = None,
    ) -> None:
        """One cooperative checkpoint fired; maybe emit a ticker line."""
        now = self._clock()
        if self._started_at is None:
            self._started_at = now
        self._where = where
        self._rounds = rounds
        self._steps = steps
        if facts is not None:
            self._gauges["facts"] = facts
        if nulls is not None:
            self._gauges["nulls"] = nulls
        if branches is not None:
            self._gauges["branches"] = branches
        if now < self._next_at:
            return
        self._next_at = now + self.interval
        self.ticks += 1
        self._write(self.render(now))

    def branch_event(self, kind: str, reason: Optional[str] = None) -> None:
        """Record one disjunctive-chase branch lifecycle event.

        *kind* is ``"opened"``, ``"forked"`` (the branch fired a
        disjunctive trigger and was superseded by its children), or
        ``"closed"``; close events carry the chase's close *reason*
        (``finished``, ``duplicate``, ``exhausted``,
        ``nonterminating``).  The running breakdown is appended to the
        throttled ticker line — the latest-gauge heartbeats alone
        cannot say *why* the open-branch count moved.
        """
        if kind == "opened":
            self.branches_opened += 1
        elif kind == "forked":
            self.branches_forked += 1
        elif kind == "closed":
            self.branches_closed += 1
            if reason:
                self.close_reasons[reason] = self.close_reasons.get(reason, 0) + 1
        else:
            raise ValueError(f"unknown branch event kind {kind!r}")

    @property
    def branches_open(self) -> int:
        """Branches opened and neither closed nor superseded."""
        return self.branches_opened - self.branches_closed - self.branches_forked

    def branch_breakdown(self) -> str:
        """The per-branch ticker segment, or ``""`` before any event."""
        if not self.branches_opened:
            return ""
        text = (
            f"branches open={self.branches_open} "
            f"opened={self.branches_opened} "
            f"forked={self.branches_forked} closed={self.branches_closed}"
        )
        if self.close_reasons:
            reasons = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.close_reasons.items())
            )
            text += f" ({reasons})"
        return text

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def render(self, now: Optional[float] = None) -> str:
        """The current ticker line (without the trailing newline)."""
        if now is None:
            now = self._clock()
        elapsed = 0.0 if self._started_at is None else now - self._started_at
        parts = [
            f"{self.label}: {self._where}",
            f"round {self._rounds}",
            f"steps={self._steps}",
        ]
        for name in ("facts", "nulls", "branches"):
            if name in self._gauges:
                parts.append(f"{name}={self._gauges[name]}")
        parts.append(f"elapsed={elapsed:.1f}s")
        breakdown = self.branch_breakdown()
        if breakdown:
            parts.append(f"| {breakdown}")
        return " ".join(parts)

    # -- output --------------------------------------------------------

    def _write(self, line: str) -> None:
        stream = self.stream
        if stream is None:
            return
        if getattr(stream, "isatty", lambda: False)():
            stream.write("\r\x1b[2K" + line)
        else:
            stream.write(line + "\n")
        stream.flush()
        self._line_open = True

    def finish(self, note: str = "") -> None:
        """Terminate the ticker: final line (when anything ran) + *note*."""
        if self.stream is None or not self._line_open:
            return
        final = self.render()
        if note:
            final += f"  [{note}]"
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r\x1b[2K" + final + "\n")
        else:
            self.stream.write(final + "\n")
        self.stream.flush()
        self._line_open = False


# ----------------------------------------------------------------------
# The ambient (process-wide) reporter
# ----------------------------------------------------------------------

_current: Optional[ProgressReporter] = None


def current_reporter() -> Optional[ProgressReporter]:
    """The ambient reporter, or ``None`` (the default).

    Read once per :class:`repro.limits.Budget` construction — the
    disabled-path cost at the checkpoints themselves is a slot read."""
    return _current


def set_reporter(
    reporter: Optional[ProgressReporter],
) -> Optional[ProgressReporter]:
    """Install *reporter* as the ambient one; returns the previous."""
    global _current
    previous = _current
    _current = reporter
    return previous


@contextmanager
def progress_scope(reporter: Optional[ProgressReporter] = None):
    """Scope an ambient reporter: ``with progress_scope(r): ...``."""
    if reporter is None:
        reporter = ProgressReporter(stream=sys.stderr)
    previous = set_reporter(reporter)
    try:
        yield reporter
    finally:
        set_reporter(previous)


__all__ = [
    "ProgressReporter",
    "current_reporter",
    "progress_scope",
    "set_reporter",
]
