"""Telemetry sinks: where engine operation records go when configured.

The observability subsystem (tracer, metrics, provenance) is rich but
ephemeral — everything lives in process memory and evaporates on exit.
Sinks are the export layer: after every operation the engine builds one
:class:`OpRecord` (op kind, content digests, wall time, cache outcome,
work counters, budget diagnosis, error type) and hands it to each
configured :class:`TelemetrySink`.

Three implementations:

* :class:`JsonlSink` — structured log: one JSON object per operation,
  appended to a file (the machine-readable audit trail);
* :class:`OpenMetricsSink` — maintains a :class:`MetricsRegistry` of
  operation counters and wall-time histograms (fixed-log-bucket, so
  worker merges stay exact) and rewrites an OpenMetrics/Prometheus text
  file after each flush — the node-exporter textfile-collector pattern;
* :class:`MultiSink` — in-process fan-out to several sinks.

The PR-2 overhead guarantee holds: with no sink configured the engine
pays one attribute check per operation (``benchmarks/
bench_sink_overhead.py`` enforces the ≤2% budget in CI).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from .metrics import MetricsRegistry

try:  # pragma: no cover - typing_extensions-free 3.7 fallbacks not needed
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient pythons only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@dataclass(frozen=True)
class OpRecord:
    """One engine operation, flattened for export.

    ``exhausted`` is the tripped resource name from the
    :class:`repro.limits.Exhausted` diagnosis (``"deadline"``,
    ``"rounds"``, …; ``None`` for completed runs); ``error`` the
    exception class name for failed items; ``batch_index`` the item's
    position when the operation ran inside ``chase_many`` /
    ``reverse_many``; ``kills`` how many hung workers the supervisor
    had to terminate while running the item (0 outside supervised
    batches).

    ``triggers`` counts the premise bindings the operation's chase
    enumerated (``ChaseResult.triggers_considered``), so ops-log lines
    and registry rows agree with ``engine.stats()`` per operation.
    ``trace_id``/``request_id`` carry the ambient
    :class:`repro.obs.context.TraceContext` of the originating request
    (empty outside one), making every exported record correlatable to
    the CLI invocation or HTTP call that caused it.
    """

    op: str
    mapping_digest: str = ""
    instance_digest: str = ""
    wall_time: float = 0.0
    cache_hit: bool = False
    rounds: int = 0
    steps: int = 0
    facts: int = 0
    nulls: int = 0
    branches: int = 0
    triggers: int = 0
    exhausted: Optional[str] = None
    error: Optional[str] = None
    batch_index: Optional[int] = None
    attempts: int = 1
    kills: int = 0
    trace_id: str = ""
    request_id: str = ""
    ts: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        """The record as a plain dict (the JSONL line payload)."""
        return asdict(self)


@runtime_checkable
class TelemetrySink(Protocol):
    """What the engine needs from a sink: record operations, close."""

    def record(self, record: OpRecord) -> None:  # pragma: no cover
        """Accept one finished-operation record."""
        ...

    def close(self) -> None:  # pragma: no cover
        """Flush and release any held resources (idempotent)."""
        ...


class JsonlSink:
    """Structured operation log: one JSON object per line, appended.

    The file handle stays open across records (one ``write`` + flush per
    operation); ``close()`` is idempotent.
    """

    def __init__(self, path: str) -> None:
        """Open (append mode) the log at *path*, creating parents."""
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self.records = 0

    def record(self, record: OpRecord) -> None:
        """Append one record as a sorted-key JSON line and flush."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        self._handle.flush()
        self.records += 1

    def close(self) -> None:
        """Close the file handle; later records are ignored."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class OpenMetricsSink:
    """Aggregates operation records into an OpenMetrics text file.

    Counters: ``repro_ops_<op>_total``, ``..._cache_hits_total``,
    ``..._errors_total``, ``..._exhausted_total``, plus work totals
    (rounds/steps/facts/nulls/branches).  Wall times feed per-op
    histograms with the fixed log buckets of
    :class:`repro.obs.metrics.BucketedHistogram`, so a file produced
    from merged worker registries equals the single-process one.

    The file is rewritten atomically (temp file + rename) on every
    flush, matching how Prometheus textfile collectors expect to read
    it.  ``extra`` (when given) is merged into the output at write time
    — the CLI passes the engine tracer's registry through it so span
    histograms are exported alongside operation counters.

    Two independent throttles bound the rewrite cost for hot batch
    loops (scrapers poll on the order of seconds, so sub-second file
    freshness buys nothing):

    * ``write_every=N`` flushes at most every *N*-th record;
    * ``min_interval`` (seconds) skips a due flush when the file was
      rewritten more recently than that — so ``write_every=1`` stays
      safe to configure even under thousands of records per second.

    Whatever the throttles suppressed, ``close()`` always performs one
    final unconditional write: the file on disk reflects every record
    once the sink is closed.
    """

    def __init__(
        self, path: str, write_every: int = 1, min_interval: float = 0.0
    ) -> None:
        """Aggregate into *path*; see the class docstring for throttles."""
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self.registry = MetricsRegistry()
        self.extra: Optional[MetricsRegistry] = None
        self.write_every = max(1, write_every)
        self.min_interval = min_interval
        self.records = 0
        self.writes = 0
        self._last_write = float("-inf")
        self._closed = False

    def record(self, record: OpRecord) -> None:
        """Fold one record into the registry; flush when due."""
        if self._closed:
            return
        registry = self.registry
        registry.inc(f"ops.{record.op}")
        if record.cache_hit:
            registry.inc(f"ops.{record.op}.cache_hits")
        if record.error is not None:
            registry.inc(f"ops.{record.op}.errors")
        if record.exhausted is not None:
            registry.inc(f"ops.{record.op}.exhausted")
        for counter in (
            "rounds",
            "steps",
            "facts",
            "nulls",
            "branches",
            "triggers",
            "kills",
        ):
            amount = getattr(record, counter)
            if amount:
                registry.inc(f"ops.{record.op}.{counter}", amount)
        registry.observe(f"op.{record.op}.wall_time", record.wall_time)
        self.records += 1
        if self.records % self.write_every == 0:
            now = time.monotonic()
            if now - self._last_write >= self.min_interval:
                self.write()

    def render(self) -> str:
        """The current exposition text (own registry merged with extra)."""
        if self.extra is None:
            return self.registry.to_openmetrics()
        merged = MetricsRegistry()
        merged.merge(self.registry)
        merged.merge(self.extra)
        return merged.to_openmetrics()

    def write(self) -> None:
        """Atomically rewrite the exposition file (throttles not applied)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".om-", dir=directory, text=True
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(self.render())
            os.replace(temp_path, self.path)
        except BaseException:  # pragma: no cover - disk-level failures
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.writes += 1
        self._last_write = time.monotonic()

    def close(self) -> None:
        """One final unconditional write, then ignore further records."""
        if not self._closed:
            self.write()
            self._closed = True


class MultiSink:
    """In-process fan-out: every record goes to every child sink.

    A child raising does not starve its siblings — the first error is
    re-raised after all children were offered the record.
    """

    def __init__(self, sinks: Sequence[TelemetrySink]) -> None:
        """Wrap *sinks*; order defines record delivery order."""
        self.sinks: List[TelemetrySink] = list(sinks)

    def record(self, record: OpRecord) -> None:
        """Offer the record to every child; re-raise the first error."""
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.record(record)
            except Exception as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        """Close every child; re-raise the first error afterwards."""
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error


__all__ = [
    "JsonlSink",
    "MultiSink",
    "OpRecord",
    "OpenMetricsSink",
    "TelemetrySink",
]
