"""The chase profiler: per-dependency, per-round time attribution.

``EXPLAIN ANALYZE`` for the chase.  A :class:`ChaseProfiler` is handed
to :func:`repro.chase.standard.chase` (or the disjunctive chase) and
collects, for every dependency × fixpoint round, the **self time** of
that dependency's match-and-fire block plus its work counters:
triggers considered, triggers fired, facts added, nulls minted.  The
finished :class:`ChaseProfile` answers "which tgd is the hot one" the
way a database plan profile answers "which operator".

Cost model: with no profiler installed the chase pays one ``None``
check per (dependency, round) — the ≤2% ambient-off budget is enforced
by ``benchmarks/bench_profile_overhead.py`` in CI.  With a profiler
installed the only additions are two ``perf_counter`` calls and one
dict accumulation per (dependency, round) — never per binding — gated
at ≤10%.  Profiling **never changes the chase result**: the CI
``profile-smoke`` job diffs profiled output byte-for-byte against an
unprofiled run.

Dependencies are keyed by a stable :func:`fingerprint_dependency`
(content hash of the dependency text), so profiles from different
processes, runs, or registry rows line up row-for-row —
``repro runs diff --profile`` exploits this to attribute a wall-time
regression to the specific dependencies whose self time moved.  When a
tracer is also active the chase emits one ``chase.dep`` span per
active (dependency, round) cell; :meth:`ChaseProfile.from_spans`
rebuilds the same profile from those spans after a cross-process
merge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEP_SPAN_NAME",
    "ChaseProfile",
    "ChaseProfiler",
    "DependencyProfile",
    "fingerprint_dependency",
    "render_profile",
    "diff_profiles",
]

#: Span name used for per-(dependency, round) chase profile spans.
DEP_SPAN_NAME = "chase.dep"

#: Blocks for the rounds-active sparkline, lightest to heaviest.
_SPARK = "▁▂▃▄▅▆▇█"


def fingerprint_dependency(dependency) -> str:
    """A stable 12-hex content fingerprint of one dependency.

    Hashes the dependency's text form, so the same tgd gets the same
    fingerprint across processes, sessions, and registry rows —
    regardless of its position in the mapping.
    """
    text = dependency if isinstance(dependency, str) else str(dependency)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class RoundCell:
    """One dependency's work inside one fixpoint round."""

    round: int
    seconds: float
    considered: int
    fired: int
    facts: int
    nulls: int

    def as_list(self) -> list:
        """The compact JSON projection ``[round, sec, c, f, fa, n]``."""
        return [
            self.round,
            self.seconds,
            self.considered,
            self.fired,
            self.facts,
            self.nulls,
        ]


@dataclass(frozen=True)
class DependencyProfile:
    """One dependency's aggregated profile row.

    ``branch`` is ``None`` for the standard chase and the branch id for
    disjunctive-chase attribution (the same tgd may appear once per
    branch)."""

    fingerprint: str
    text: str
    self_time: float
    considered: int
    fired: int
    facts: int
    nulls: int
    rounds: Tuple[RoundCell, ...]
    branch: Optional[str] = None

    @property
    def active_rounds(self) -> int:
        """Rounds in which this dependency had any binding to consider."""
        return sum(1 for cell in self.rounds if cell.considered > 0)


@dataclass(frozen=True)
class ChaseProfile:
    """The finished profile of one chase: per-dependency attribution.

    ``dependencies`` is sorted by self time, hottest first;
    ``total_time`` is the whole operation's wall time (the profiled
    blocks' sum when the caller did not supply one)."""

    total_time: float
    rounds: int
    dependencies: Tuple[DependencyProfile, ...]

    @property
    def triggers_considered(self) -> int:
        """Sum of every per-round ``considered`` count across rows."""
        return sum(dep.considered for dep in self.dependencies)

    @property
    def self_time(self) -> float:
        """Total profiled (attributed) time across all dependencies."""
        return sum(dep.self_time for dep in self.dependencies)

    def to_summary(self) -> dict:
        """A JSON-safe summary for registry rows and HTTP payloads."""
        return {
            "total_time": self.total_time,
            "rounds": self.rounds,
            "dependencies": [
                {
                    "fingerprint": dep.fingerprint,
                    "text": dep.text,
                    "branch": dep.branch,
                    "self_time": dep.self_time,
                    "considered": dep.considered,
                    "fired": dep.fired,
                    "facts": dep.facts,
                    "nulls": dep.nulls,
                    "rounds": [cell.as_list() for cell in dep.rounds],
                }
                for dep in self.dependencies
            ],
        }

    @classmethod
    def from_summary(cls, data: Optional[dict]) -> Optional["ChaseProfile"]:
        """Rebuild a profile from :meth:`to_summary` output (None-safe)."""
        if not data:
            return None
        deps = []
        for row in data.get("dependencies", ()):
            cells = tuple(
                RoundCell(
                    round=int(c[0]),
                    seconds=float(c[1]),
                    considered=int(c[2]),
                    fired=int(c[3]),
                    facts=int(c[4]),
                    nulls=int(c[5]),
                )
                for c in row.get("rounds", ())
            )
            deps.append(
                DependencyProfile(
                    fingerprint=str(row.get("fingerprint", "")),
                    text=str(row.get("text", "")),
                    branch=row.get("branch"),
                    self_time=float(row.get("self_time", 0.0)),
                    considered=int(row.get("considered", 0)),
                    fired=int(row.get("fired", 0)),
                    facts=int(row.get("facts", 0)),
                    nulls=int(row.get("nulls", 0)),
                    rounds=cells,
                )
            )
        deps.sort(key=lambda d: (-d.self_time, d.fingerprint, d.branch or ""))
        return cls(
            total_time=float(data.get("total_time", 0.0)),
            rounds=int(data.get("rounds", 0)),
            dependencies=tuple(deps),
        )

    @classmethod
    def from_spans(
        cls, spans: Iterable, total_time: Optional[float] = None
    ) -> "ChaseProfile":
        """Aggregate ``chase.dep`` spans back into a profile.

        Accepts :class:`~repro.obs.tracer.Span` objects or their
        exported dict form, so profiles can be rebuilt both from a
        live tracer after a cross-process merge and from span JSON
        persisted on a registry row.
        """
        profiler = ChaseProfiler()
        for span in spans:
            if isinstance(span, dict):
                name, attrs = span.get("name"), span.get("attrs", {})
                duration = float(span.get("duration", 0.0))
            else:
                name, attrs = span.name, span.attrs
                duration = span.duration
            if name != DEP_SPAN_NAME:
                continue
            profiler.note(
                fingerprint=str(attrs.get("fingerprint", "")),
                text=str(attrs.get("tgd", "")),
                round_number=int(attrs.get("round", 0)),
                seconds=float(attrs.get("seconds", duration)),
                considered=int(attrs.get("considered", 0)),
                fired=int(attrs.get("fired", 0)),
                facts=int(attrs.get("facts", 0)),
                nulls=int(attrs.get("nulls", 0)),
                branch=attrs.get("branch"),
            )
        return profiler.profile(total_time=total_time)


class ChaseProfiler:
    """Mutable per-chase collector the fixpoint loops accumulate into.

    One instance may span several chase calls (the disjunctive reverse
    chase profiles every quotient world into the same collector, keyed
    by branch).  Not thread-safe — one profiler per operation, like a
    budget."""

    __slots__ = ("_cells", "_texts", "_max_round")

    def __init__(self) -> None:
        """An empty collector."""
        # (fingerprint, branch) -> {round -> [sec, considered, fired, facts, nulls]}
        self._cells: Dict[Tuple[str, Optional[str]], Dict[int, list]] = {}
        self._texts: Dict[str, str] = {}
        self._max_round = 0

    def note(
        self,
        fingerprint: str,
        text: str,
        round_number: int,
        seconds: float,
        considered: int,
        fired: int,
        facts: int,
        nulls: int,
        branch: Optional[str] = None,
    ) -> None:
        """Accumulate one (dependency, round) cell."""
        self._texts.setdefault(fingerprint, text)
        if round_number > self._max_round:
            self._max_round = round_number
        rounds = self._cells.setdefault((fingerprint, branch), {})
        cell = rounds.get(round_number)
        if cell is None:
            rounds[round_number] = [seconds, considered, fired, facts, nulls]
        else:
            cell[0] += seconds
            cell[1] += considered
            cell[2] += fired
            cell[3] += facts
            cell[4] += nulls

    def __bool__(self) -> bool:
        """True once any cell has been recorded."""
        return bool(self._cells)

    def profile(self, total_time: Optional[float] = None) -> ChaseProfile:
        """Freeze the collected cells into a :class:`ChaseProfile`."""
        deps: List[DependencyProfile] = []
        for (fingerprint, branch), rounds in self._cells.items():
            cells = tuple(
                RoundCell(
                    round=r,
                    seconds=vals[0],
                    considered=vals[1],
                    fired=vals[2],
                    facts=vals[3],
                    nulls=vals[4],
                )
                for r, vals in sorted(rounds.items())
            )
            deps.append(
                DependencyProfile(
                    fingerprint=fingerprint,
                    text=self._texts.get(fingerprint, ""),
                    branch=branch,
                    self_time=sum(c.seconds for c in cells),
                    considered=sum(c.considered for c in cells),
                    fired=sum(c.fired for c in cells),
                    facts=sum(c.facts for c in cells),
                    nulls=sum(c.nulls for c in cells),
                    rounds=cells,
                )
            )
        deps.sort(key=lambda d: (-d.self_time, d.fingerprint, d.branch or ""))
        attributed = sum(d.self_time for d in deps)
        return ChaseProfile(
            total_time=attributed if total_time is None else total_time,
            rounds=self._max_round,
            dependencies=tuple(deps),
        )


def _sparkline(dep: DependencyProfile, rounds: int) -> str:
    """Per-round activity (triggers considered) as a block sparkline."""
    if rounds <= 0:
        return ""
    by_round = {cell.round: cell.considered for cell in dep.rounds}
    peak = max(by_round.values(), default=0)
    out = []
    for r in range(1, rounds + 1):
        value = by_round.get(r, 0)
        if value <= 0 or peak <= 0:
            out.append("·")
        else:
            out.append(_SPARK[min(len(_SPARK) - 1, (value * len(_SPARK)) // (peak + 1))])
    return "".join(out)


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def render_profile(profile: ChaseProfile, text_width: int = 44) -> str:
    """The ``EXPLAIN ANALYZE``-style table, hottest dependency first.

    One row per dependency (× branch for disjunctive profiles): self
    time, share of total, rounds active, triggers considered/fired,
    facts and nulls produced, and a per-round activity sparkline.
    """
    total = profile.total_time or profile.self_time
    branchy = any(dep.branch is not None for dep in profile.dependencies)
    header = (
        f"chase profile: {total * 1000:.3f} ms total, "
        f"{profile.rounds} round{'s' if profile.rounds != 1 else ''}, "
        f"{profile.triggers_considered} triggers considered"
    )
    if not profile.dependencies:
        return header + "\n  (no dependencies profiled)"
    width = max(
        [len("dependency")]
        + [len(_clip(d.text, text_width)) for d in profile.dependencies]
    )
    lines = [header]
    branch_col = "  branch" if branchy else ""
    lines.append(
        f"  {'dependency':<{width}}  {'fingerprint':<12}  {'self':>10}  "
        f"{'%':>5}  {'rounds':>6}  {'considered':>10}  {'fired':>7}  "
        f"{'facts':>7}  {'nulls':>7}{branch_col}  activity"
    )
    for dep in profile.dependencies:
        share = (dep.self_time / total * 100.0) if total > 0 else 0.0
        branch_cell = f"  {dep.branch or '':>6}" if branchy else ""
        lines.append(
            f"  {_clip(dep.text, text_width):<{width}}  {dep.fingerprint:<12}  "
            f"{dep.self_time * 1000:>8.3f}ms  {share:>4.1f}%  "
            f"{dep.active_rounds:>3}/{profile.rounds:<2}  {dep.considered:>10}  "
            f"{dep.fired:>7}  {dep.facts:>7}  {dep.nulls:>7}{branch_cell}  "
            f"{_sparkline(dep, profile.rounds)}"
        )
    return "\n".join(lines)


def diff_profiles(
    before: ChaseProfile, after: ChaseProfile, text_width: int = 44
) -> str:
    """Attribute a wall-time move to the dependencies that moved.

    Matches rows across the two profiles by (fingerprint, branch) and
    renders self-time deltas sorted by absolute movement — the
    ``repro runs diff --profile`` body.
    """
    keyed_before = {(d.fingerprint, d.branch): d for d in before.dependencies}
    keyed_after = {(d.fingerprint, d.branch): d for d in after.dependencies}
    rows = []
    for key in sorted(set(keyed_before) | set(keyed_after)):
        b, a = keyed_before.get(key), keyed_after.get(key)
        b_time = b.self_time if b is not None else 0.0
        a_time = a.self_time if a is not None else 0.0
        delta = a_time - b_time
        text = (a or b).text
        rows.append((abs(delta), delta, b_time, a_time, key, text, b, a))
    rows.sort(key=lambda r: (-r[0], r[4]))
    total_delta = after.total_time - before.total_time
    pct = (
        f" ({total_delta / before.total_time * 100.0:+.1f}%)"
        if before.total_time > 0
        else ""
    )
    lines = [
        "profile diff: total "
        f"{before.total_time * 1000:.3f} ms -> {after.total_time * 1000:.3f} ms "
        f"[{total_delta * 1000:+.3f} ms{pct}]"
    ]
    for _, delta, b_time, a_time, key, text, b, a in rows:
        fingerprint, branch = key
        if b is None:
            note = "appeared"
        elif a is None:
            note = "removed"
        elif b_time > 0:
            note = f"{delta / b_time * 100.0:+.1f}%"
        else:
            note = "+inf%"
        branch_note = f" branch={branch}" if branch is not None else ""
        lines.append(
            f"  {delta * 1000:+9.3f} ms  {note:>9}  "
            f"{_clip(text, text_width)} [{fingerprint}]{branch_note}  "
            f"({b_time * 1000:.3f} -> {a_time * 1000:.3f} ms)"
        )
    return "\n".join(lines)
