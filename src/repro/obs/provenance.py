"""Why-provenance for the chase and the disjunctive chase.

A :class:`ProvenanceGraph` consumes the typed trace events of
:mod:`repro.obs.events` and organizes them into queryable structure:

* for every **generated fact** — the tgd that produced it, the premise
  binding, the fixpoint round, and (disjunctive chase) the branch
  (:meth:`why` / :meth:`derivations` / :meth:`derivation_tree`);
* for every **fresh null** — which tgd firing minted it and for which
  existential variable (:meth:`lineage`);
* for the disjunctive chase — the **branch genealogy** (which firing
  opened which branch, and why each branch closed).

Because the graph records the exact facts each firing added, a chase is
*replayable*: :meth:`replay` folds the firing log over the input
instance and must reproduce the chased instance fact-for-fact
(:meth:`check_replay`), which the test suite verifies for every paper
scenario.  This is the structure that Auge's provenance-enhanced
inversion work shows makes reverse exchange debuggable: ``why`` answers
"where did this fact come from", ``lineage`` answers "what does this
null stand in for".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..instance import Fact, Instance
from ..terms import Null
from .events import (
    Binding,
    BranchClosed,
    BranchOpened,
    NullMinted,
    TraceEvent,
    TriggerFired,
)


@dataclass(frozen=True)
class Derivation:
    """One way a fact arose: a tgd firing and its premise support."""

    fact: Fact
    tgd: str
    tgd_index: int
    round: int
    binding: Binding
    premises: Tuple[Fact, ...]
    minted: Tuple[Tuple[str, Null], ...] = ()
    branch: Optional[str] = None


@dataclass(frozen=True)
class NullBirth:
    """The minting record of one fresh null."""

    null: Null
    var: str
    tgd: str
    tgd_index: int
    round: int
    branch: Optional[str] = None


@dataclass
class BranchNode:
    """One branch of the disjunctive chase in the genealogy tree."""

    branch: str
    parent: Optional[str] = None
    disjunct_index: Optional[int] = None
    added: List[Fact] = field(default_factory=list)
    closed: Optional[str] = None


@dataclass
class DerivationNode:
    """A node of a derivation tree: a fact, how it arose, its support.

    ``derivation`` is ``None`` for input facts (leaves); ``children``
    are the derivation trees of the premise facts.
    """

    fact: Fact
    derivation: Optional[Derivation]
    children: List["DerivationNode"] = field(default_factory=list)

    @property
    def is_input(self) -> bool:
        return self.derivation is None


class ProvenanceGraph:
    """Queryable why-provenance assembled from trace events."""

    def __init__(self) -> None:
        """An empty graph; the tracer feeds it event by event."""
        self._firings: List[TriggerFired] = []
        self._derivations: Dict[Fact, List[Derivation]] = {}
        self._births: Dict[Null, NullBirth] = {}
        self._branches: Dict[str, BranchNode] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        """Fold one trace event into the graph (unknown kinds ignored)."""
        if isinstance(event, TriggerFired):
            self._firings.append(event)
            for f in event.added:
                self._derivations.setdefault(f, []).append(
                    Derivation(
                        fact=f,
                        tgd=event.tgd,
                        tgd_index=event.tgd_index,
                        round=event.round,
                        binding=event.binding,
                        premises=event.premises,
                        minted=event.minted,
                        branch=event.branch,
                    )
                )
            if event.branch is not None:
                node = self._branches.get(event.branch)
                if node is None:
                    node = self._branches[event.branch] = BranchNode(event.branch)
                node.added.extend(event.added)
        elif isinstance(event, NullMinted):
            self._births.setdefault(
                event.null,
                NullBirth(
                    null=event.null,
                    var=event.var,
                    tgd=event.tgd,
                    tgd_index=event.tgd_index,
                    round=event.round,
                    branch=event.branch,
                ),
            )
        elif isinstance(event, BranchOpened):
            node = self._branches.get(event.branch)
            if node is None:
                node = self._branches[event.branch] = BranchNode(event.branch)
            node.parent = event.parent
            node.disjunct_index = event.disjunct_index
        elif isinstance(event, BranchClosed):
            node = self._branches.get(event.branch)
            if node is None:
                node = self._branches[event.branch] = BranchNode(event.branch)
            node.closed = event.reason

    @classmethod
    def from_events(cls, events) -> "ProvenanceGraph":
        """Rebuild a graph from a recorded event stream."""
        graph = cls()
        for event in events:
            graph.record(event)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def why(self, f: Fact, branch: Optional[str] = None) -> Optional[Derivation]:
        """The first recorded derivation of *f* (``None`` if underived).

        With *branch*, prefers a derivation recorded on that branch or
        one of its ancestors; falls back to the first derivation.
        """
        options = self._derivations.get(f)
        if not options:
            return None
        if branch is not None:
            lineage_ids = set(self._ancestry(branch))
            for d in options:
                if d.branch in lineage_ids:
                    return d
        return options[0]

    def derivations(self, f: Fact) -> Tuple[Derivation, ...]:
        """Every recorded derivation of *f* across all branches."""
        return tuple(self._derivations.get(f, ()))

    def lineage(self, null: Null) -> Optional[NullBirth]:
        """The minting record of *null* (``None`` for input nulls)."""
        return self._births.get(null)

    def derived_facts(self) -> Iterator[Fact]:
        """Every fact with at least one derivation."""
        return iter(self._derivations)

    def minted_nulls(self) -> Iterator[Null]:
        """Every null with a minting record."""
        return iter(self._births)

    @property
    def firings(self) -> Tuple[TriggerFired, ...]:
        """The trigger-firing log in emission order."""
        return tuple(self._firings)

    @property
    def branches(self) -> Dict[str, BranchNode]:
        """The branch genealogy (empty for the standard chase)."""
        return dict(self._branches)

    def derivation_tree(
        self, f: Fact, branch: Optional[str] = None
    ) -> DerivationNode:
        """The full derivation tree of *f* down to input facts.

        Premise facts that are themselves generated expand recursively;
        already-expanded facts re-appear as leaves (with their
        derivation attached) so shared sub-derivations do not blow the
        tree up exponentially.
        """
        expanded: set = set()

        def build(g: Fact) -> DerivationNode:
            d = self.why(g, branch=branch)
            node = DerivationNode(fact=g, derivation=d)
            if d is not None and g not in expanded:
                expanded.add(g)
                node.children = [build(p) for p in d.premises]
            return node

        return build(f)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self, source: Instance) -> Instance:
        """Re-apply the standard-chase firing log to *source*.

        Folds every recorded (branch-free) firing's added facts over the
        input; by construction this must equal the chased instance."""
        facts = set(source.facts)
        for firing in self._firings:
            if firing.branch is None:
                facts.update(firing.added)
        return Instance(facts)

    def check_replay(self, source: Instance, result: Instance) -> bool:
        """True when replaying the provenance reproduces *result* exactly."""
        return self.replay(source) == result

    def _ancestry(self, branch: str) -> Iterator[str]:
        """Yield *branch* and its ancestors up to the root."""
        current: Optional[str] = branch
        while current is not None:
            yield current
            node = self._branches.get(current)
            current = node.parent if node is not None else None

    def replay_branch(self, branch: str, source: Instance) -> Instance:
        """Reconstruct one disjunctive-chase branch instance from *source*."""
        facts = set(source.facts)
        for ancestor in self._ancestry(branch):
            node = self._branches.get(ancestor)
            if node is not None:
                facts.update(node.added)
        return Instance(facts)

    def finished_branches(self) -> List[str]:
        """Branch ids that closed as results, in genealogy order."""
        return [
            name for name, node in self._branches.items() if node.closed == "finished"
        ]

    def replay_branches(self, source: Instance) -> List[Instance]:
        """Reconstruct every finished branch instance from *source*."""
        return [self.replay_branch(b, source) for b in self.finished_branches()]
