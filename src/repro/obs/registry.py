"""The persistent run registry: SQLite-backed history of engine operations.

Every in-process signal the obs subsystem produces dies with the
process; the registry is the memory.  One row per engine operation —
op kind, mapping/instance digests, wall time, cache outcome, work
counters, budget diagnosis, error type, and an optional metrics JSON
payload — recorded into a single-file SQLite database (default
``.repro_runs/runs.db``).  On top of the history:

* ``repro runs list|show|diff|gc`` — the CLI surface;
* :meth:`RunRegistry.compare_to_baseline` — the regression check: flag
  a run whose wall time exceeds the registry median for its baseline
  group by a configurable factor.  The group is *(op, mapping digest,
  instance digest)* — the full content address of the work — falling
  back to the blended *(op, mapping digest)* median when the exact
  group has too few prior samples (see ``docs/OBSERVABILITY.md`` §7).
  ``benchmarks/report.py --registry`` and the CI telemetry smoke job
  consume it.

The registry implements the :class:`repro.obs.sinks.TelemetrySink`
protocol, so the engine treats it as one more sink.  Writes open a
short-lived connection per record (WAL-free, autocommit), which keeps
concurrent CLI invocations safe — SQLite serializes them.
"""

from __future__ import annotations

import json
import os
import sqlite3
import statistics
from dataclasses import dataclass
from typing import List, Optional

from .sinks import OpRecord

#: Where the registry lives unless overridden (flag or ``REPRO_RUNS_DB``).
DEFAULT_DB_PATH = os.path.join(".repro_runs", "runs.db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    ts REAL NOT NULL,
    op TEXT NOT NULL,
    mapping_digest TEXT NOT NULL DEFAULT '',
    instance_digest TEXT NOT NULL DEFAULT '',
    wall_time REAL NOT NULL DEFAULT 0.0,
    cache_hit INTEGER NOT NULL DEFAULT 0,
    rounds INTEGER NOT NULL DEFAULT 0,
    steps INTEGER NOT NULL DEFAULT 0,
    facts INTEGER NOT NULL DEFAULT 0,
    nulls INTEGER NOT NULL DEFAULT 0,
    branches INTEGER NOT NULL DEFAULT 0,
    triggers INTEGER NOT NULL DEFAULT 0,
    exhausted TEXT,
    error TEXT,
    trace_id TEXT NOT NULL DEFAULT '',
    request_id TEXT NOT NULL DEFAULT '',
    metrics TEXT
);
CREATE INDEX IF NOT EXISTS runs_op_mapping ON runs (op, mapping_digest);
CREATE INDEX IF NOT EXISTS runs_op_mapping_instance
    ON runs (op, mapping_digest, instance_digest);
CREATE INDEX IF NOT EXISTS runs_request_id ON runs (request_id);
"""

_COLUMNS = (
    "id", "ts", "op", "mapping_digest", "instance_digest", "wall_time",
    "cache_hit", "rounds", "steps", "facts", "nulls", "branches",
    "triggers", "exhausted", "error", "trace_id", "request_id", "metrics",
)

#: Columns added after the PR-4 schema, with their ALTER TABLE clauses —
#: opening a pre-existing database migrates it in place.
_MIGRATIONS = {
    "triggers": "triggers INTEGER NOT NULL DEFAULT 0",
    "trace_id": "trace_id TEXT NOT NULL DEFAULT ''",
    "request_id": "request_id TEXT NOT NULL DEFAULT ''",
}


@dataclass(frozen=True)
class RunRow:
    """One recorded operation, as read back from the registry."""

    id: int
    ts: float
    op: str
    mapping_digest: str
    instance_digest: str
    wall_time: float
    cache_hit: bool
    rounds: int
    steps: int
    facts: int
    nulls: int
    branches: int
    triggers: int
    exhausted: Optional[str]
    error: Optional[str]
    trace_id: str
    request_id: str
    metrics: Optional[dict]

    @property
    def ok(self) -> bool:
        """True when the run raised no error (it may be partial)."""
        return self.error is None

    @property
    def completed(self) -> bool:
        """True for a clean, non-partial run: no error, no exhaustion."""
        return self.error is None and self.exhausted is None


@dataclass(frozen=True)
class RunDiff:
    """Wall-time and counter deltas between two registry rows."""

    a: RunRow
    b: RunRow

    @property
    def wall_time_delta(self) -> float:
        """Seconds gained (negative) or lost (positive) from a to b."""
        return self.b.wall_time - self.a.wall_time

    @property
    def wall_time_ratio(self) -> float:
        """``b/a`` wall-time ratio (inf when a recorded zero time)."""
        if self.a.wall_time <= 0.0:
            return float("inf") if self.b.wall_time > 0.0 else 1.0
        return self.b.wall_time / self.a.wall_time

    def counter_deltas(self) -> dict:
        """Per-counter ``b - a`` differences for the work counters."""
        return {
            name: getattr(self.b, name) - getattr(self.a, name)
            for name in (
                "rounds",
                "steps",
                "facts",
                "nulls",
                "branches",
                "triggers",
            )
        }

    def render(self) -> str:
        """A multi-line human-readable comparison (the CLI's ``runs diff``)."""
        lines = [
            f"runs {self.a.id} -> {self.b.id} ({self.a.op})",
            (
                f"  wall time: {self.a.wall_time:.6f}s -> "
                f"{self.b.wall_time:.6f}s  "
                f"delta {self.wall_time_delta:+.6f}s "
                f"(x{self.wall_time_ratio:.2f})"
            ),
        ]
        for name, delta in self.counter_deltas().items():
            if getattr(self.a, name) or getattr(self.b, name):
                lines.append(
                    f"  {name}: {getattr(self.a, name)} -> "
                    f"{getattr(self.b, name)}  delta {delta:+d}"
                )
        if self.a.mapping_digest != self.b.mapping_digest:
            lines.append("  warning: the runs chased different mappings")
        return "\n".join(lines)


@dataclass(frozen=True)
class BaselineComparison:
    """Verdict of :meth:`RunRegistry.compare_to_baseline` for one run.

    ``scope`` records which baseline group produced the median:
    ``"exact"`` (same op + mapping digest + instance digest — the run's
    full content address), ``"blended"`` (same op + mapping digest, any
    instance — the fallback when the exact group is too thin), or
    ``"none"`` (no baseline at all; ``median`` is ``None``).
    """

    run_id: int
    op: str
    wall_time: float
    median: Optional[float]
    samples: int
    factor: float
    regressed: bool
    scope: str = "none"

    @property
    def ratio(self) -> Optional[float]:
        """Run wall time over the baseline median (``None`` if no baseline)."""
        if self.median is None or self.median <= 0.0:
            return None
        return self.wall_time / self.median

    def render(self) -> str:
        """One-line verdict for CLI/CI output."""
        if self.median is None:
            return (
                f"run {self.run_id} ({self.op}): no baseline "
                f"({self.samples} comparable samples) -> ok"
            )
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"run {self.run_id} ({self.op}): {self.wall_time:.6f}s vs "
            f"{self.scope} median {self.median:.6f}s over {self.samples} runs "
            f"(x{self.ratio:.2f}, threshold x{self.factor:.2f}) -> {verdict}"
        )


class RunRegistry:
    """SQLite-backed persistent run history (one row per operation).

    Usable directly or as an engine telemetry sink.  Connections are
    per-call and short-lived, so several processes may share a file.
    """

    def __init__(self, path: str = DEFAULT_DB_PATH) -> None:
        """Open (or create) the SQLite registry at *path*.

        Databases created by earlier releases are migrated in place:
        columns added since (``triggers``, ``trace_id``,
        ``request_id``) are ``ALTER TABLE``-d in with their defaults
        before the schema script runs, so old history stays readable
        and new rows carry the new fields."""
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with self._connect() as connection:
            existing = {
                row[1]
                for row in connection.execute("PRAGMA table_info(runs)")
            }
            if existing:
                for column, clause in _MIGRATIONS.items():
                    if column not in existing:
                        connection.execute(
                            f"ALTER TABLE runs ADD COLUMN {clause}"
                        )
            connection.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.path, timeout=10.0)

    # -- the sink protocol ---------------------------------------------

    def record(
        self, record: OpRecord, metrics: Optional[dict] = None
    ) -> int:
        """Insert one operation row; returns the new row id."""
        with self._connect() as connection:
            cursor = connection.execute(
                "INSERT INTO runs (ts, op, mapping_digest, instance_digest,"
                " wall_time, cache_hit, rounds, steps, facts, nulls,"
                " branches, triggers, exhausted, error, trace_id,"
                " request_id, metrics)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.ts,
                    record.op,
                    record.mapping_digest,
                    record.instance_digest,
                    record.wall_time,
                    int(record.cache_hit),
                    record.rounds,
                    record.steps,
                    record.facts,
                    record.nulls,
                    record.branches,
                    record.triggers,
                    record.exhausted,
                    record.error,
                    record.trace_id,
                    record.request_id,
                    json.dumps(metrics, sort_keys=True)
                    if metrics is not None
                    else None,
                ),
            )
            return int(cursor.lastrowid)

    def close(self) -> None:
        """Part of the sink protocol; connections are per-call, no-op."""

    # -- reading --------------------------------------------------------

    @staticmethod
    def _row(values: tuple) -> RunRow:
        data = dict(zip(_COLUMNS, values))
        data["cache_hit"] = bool(data["cache_hit"])
        data["metrics"] = (
            json.loads(data["metrics"]) if data["metrics"] else None
        )
        return RunRow(**data)

    def list_runs(
        self,
        limit: int = 20,
        op: Optional[str] = None,
        mapping_digest: Optional[str] = None,
    ) -> List[RunRow]:
        """The most recent rows, newest first."""
        clauses, params = [], []
        if op is not None:
            clauses.append("op = ?")
            params.append(op)
        if mapping_digest is not None:
            clauses.append("mapping_digest = ?")
            params.append(mapping_digest)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        params.append(limit)
        with self._connect() as connection:
            rows = connection.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM runs{where}"
                " ORDER BY id DESC LIMIT ?",
                params,
            ).fetchall()
        return [self._row(values) for values in rows]

    def get(self, run_id: int) -> RunRow:
        """The stored row for *run_id*; raises ``KeyError`` if absent."""
        with self._connect() as connection:
            values = connection.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM runs WHERE id = ?",
                (run_id,),
            ).fetchone()
        if values is None:
            raise KeyError(f"no run with id {run_id} in {self.path}")
        return self._row(values)

    def diff(self, first_id: int, second_id: int) -> RunDiff:
        """A :class:`RunDiff` comparing two stored runs."""
        return RunDiff(a=self.get(first_id), b=self.get(second_id))

    def gc(self, keep: int = 1000) -> int:
        """Delete all but the newest *keep* rows; returns rows deleted."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        with self._connect() as connection:
            cursor = connection.execute(
                "DELETE FROM runs WHERE id NOT IN"
                " (SELECT id FROM runs ORDER BY id DESC LIMIT ?)",
                (keep,),
            )
            return cursor.rowcount

    def __len__(self) -> int:
        with self._connect() as connection:
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()
        return int(count)

    # -- the regression check ------------------------------------------

    def baseline_wall_times(
        self, run: RunRow, instance_digest: Optional[str] = None
    ) -> List[float]:
        """Comparable prior samples for *run*'s baseline group.

        Samples are completed (no error, no exhaustion), computed (no
        cache hit), recorded before *run*, and match its op and mapping
        digest.  With *instance_digest* (the exact scope) they must
        also match it — the default (``None``) keeps the historical
        blended scope of all instances under the mapping."""
        query = (
            "SELECT wall_time FROM runs WHERE op = ? AND"
            " mapping_digest = ? AND error IS NULL AND"
            " exhausted IS NULL AND cache_hit = 0 AND id < ?"
        )
        params: list = [run.op, run.mapping_digest, run.id]
        if instance_digest is not None:
            query += " AND instance_digest = ?"
            params.append(instance_digest)
        with self._connect() as connection:
            rows = connection.execute(query, params).fetchall()
        return [wall_time for (wall_time,) in rows]

    def compare_to_baseline(
        self, run_id: int, factor: float = 2.0, min_samples: int = 3
    ) -> BaselineComparison:
        """Judge *run_id*'s wall time against its baseline group's median.

        The run is flagged when it exceeds that median by more than
        *factor*.

        The baseline group is the run's full content address — *(op,
        mapping digest, instance digest)* — so a large instance's run is
        never judged against the medians of small ones chased under the
        same mapping.  When the exact group has fewer than *min_samples*
        prior runs, the check falls back to the blended *(op, mapping
        digest)* group (``scope="blended"``); with too few samples there
        as well there is no baseline and the verdict is
        ``regressed=False`` (``median`` is ``None``, ``scope="none"``) —
        a fresh registry never cries wolf.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        run = self.get(run_id)
        scope = "exact"
        samples = self.baseline_wall_times(
            run, instance_digest=run.instance_digest
        )
        if len(samples) < min_samples:
            scope = "blended"
            samples = self.baseline_wall_times(run)
        if len(samples) < min_samples:
            return BaselineComparison(
                run_id=run.id,
                op=run.op,
                wall_time=run.wall_time,
                median=None,
                samples=len(samples),
                factor=factor,
                regressed=False,
                scope="none",
            )
        median = statistics.median(samples)
        regressed = run.wall_time > factor * median and run.completed
        return BaselineComparison(
            run_id=run.id,
            op=run.op,
            wall_time=run.wall_time,
            median=median,
            samples=len(samples),
            factor=factor,
            regressed=regressed,
            scope=scope,
        )


def registry_from_env(
    variable: str = "REPRO_RUNS_DB",
) -> Optional[RunRegistry]:
    """The registry named by the environment, or ``None``.

    ``REPRO_RUNS_DB=off`` (or ``0``/``none``) explicitly disables it.
    """
    value = os.environ.get(variable, "").strip()
    if not value or value.lower() in ("off", "0", "none", "disabled"):
        return None
    return RunRegistry(value)


__all__ = [
    "BaselineComparison",
    "DEFAULT_DB_PATH",
    "RunDiff",
    "RunRegistry",
    "RunRow",
    "registry_from_env",
]
