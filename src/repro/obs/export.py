"""Trace sinks and human-readable surfacing.

Three renderers over one tracer:

* :func:`write_trace_jsonl` — the machine sink: one JSON object per
  line (events in emission order, then spans), consumed by the CLI's
  ``--trace out.jsonl`` and uploaded as a CI artifact on test failure;
* :func:`render_span_tree` — the wall-time view: the span hierarchy
  with durations, for "where does the time go inside this run";
* :func:`render_derivation` — the provenance view: a fact's derivation
  tree down to input facts, for ``repro explain``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Union

from ..instance import Fact, Instance
from .events import ResourceExhausted, event_to_dict
from .provenance import DerivationNode, ProvenanceGraph
from .tracer import Span, Tracer, TraceState


def trace_lines(source: Union[Tracer, TraceState]) -> List[dict]:
    """The JSON-safe line objects of a trace (events, then spans)."""
    lines: List[dict] = []
    for seq, event in enumerate(source.events):
        record = event_to_dict(event)
        record["seq"] = seq
        lines.append(record)
    for span in source.spans:
        record = {
            "kind": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "attrs": {k: str(v) for k, v in span.attrs.items()},
            "duration": round(span.duration, 9),
        }
        if span.trace_id:
            record["trace_id"] = span.trace_id
            record["request_id"] = span.request_id
        lines.append(record)
    return lines


def spans_payload(source: Union[Tracer, TraceState]) -> List[dict]:
    """The spans of a trace as JSON-safe dicts, parentage preserved.

    Unlike :func:`trace_lines` this keeps the raw ``start``/``end``
    clocks and the profiler attributes untouched, so a payload stored
    in the run registry's ``metrics`` column round-trips through
    :func:`spans_from_payload` into a renderable span tree and a
    rebuildable :class:`repro.obs.ChaseProfile`.
    """
    payload: List[dict] = []
    for span in source.spans:
        payload.append(
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "attrs": {
                    k: (v if isinstance(v, (int, float, bool)) else str(v))
                    for k, v in span.attrs.items()
                },
                "start": span.start,
                "end": span.end,
                "trace_id": span.trace_id,
                "request_id": span.request_id,
            }
        )
    return payload


def spans_from_payload(payload: List[dict]) -> TraceState:
    """Rebuild a span-only :class:`TraceState` from a stored payload.

    The inverse of :func:`spans_payload` — ``repro runs show`` feeds
    the result straight to :func:`render_span_tree`."""
    spans = tuple(
        Span(
            name=record.get("name", ""),
            span_id=int(record.get("span_id", 0)),
            parent_id=record.get("parent_id"),
            attrs=dict(record.get("attrs") or {}),
            start=record.get("start") or 0.0,
            end=record.get("end"),
            trace_id=record.get("trace_id", ""),
            request_id=record.get("request_id", ""),
        )
        for record in payload
    )
    return TraceState(events=(), spans=spans, metrics={})


def write_trace_jsonl(source: Union[Tracer, TraceState], path: str) -> int:
    """Write the trace to *path* as JSONL; returns the line count.

    Always writes what has been recorded so far, so a chase aborted by
    :class:`~repro.chase.standard.ChaseNonTermination` still flushes a
    usable partial trace.
    """
    lines = trace_lines(source)
    with open(path, "w", encoding="utf-8") as handle:
        for record in lines:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(lines)


def render_budget_summary(source: Union[Tracer, TraceState]) -> str:
    """The budget view of a trace: which limits tripped, and where.

    Scans the recorded events for :class:`~repro.obs.events.
    ResourceExhausted` and renders one line per exhaustion — the limit
    that tripped plus the rounds/steps counters at the moment the
    operation stopped.  ``repro explain`` prints this alongside the
    derivation trees, and ``repro runs show`` uses the same vocabulary
    for its ``exhausted`` column.
    """
    lines: List[str] = []
    for event in source.events:
        if not isinstance(event, ResourceExhausted):
            continue
        bound = "" if event.limit is None else f" (limit {event.limit})"
        used = "" if event.used is None else f" at {event.used}"
        lines.append(
            f"budget: {event.where}: {event.resource} exhausted"
            f"{used}{bound} — stopped after {event.rounds} rounds, "
            f"{event.steps} steps"
        )
    if not lines:
        return "(no budget exhaustion recorded)"
    return "\n".join(lines)


def render_span_tree(tracer: Union[Tracer, TraceState]) -> str:
    """The span hierarchy as indented text with durations."""
    spans = list(tracer.spans)
    if not spans:
        return "(no spans recorded)"
    children: dict = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = ""
        if span.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            attrs = f"  [{inner}]"
        lines.append(
            f"{'  ' * depth}{span.name:<24} {span.duration * 1000:>9.3f} ms{attrs}"
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def _render_node(
    node: DerivationNode,
    source: Optional[Instance],
    lines: List[str],
    prefix: str,
    is_last: bool,
    is_root: bool,
) -> None:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    origin = ""
    if node.is_input:
        origin = "  [input]" if source is None or node.fact in source.facts else ""
    lines.append(f"{prefix}{connector}{node.fact}{origin}")
    if node.derivation is None:
        return
    d = node.derivation
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    where = f"round {d.round}"
    if d.branch is not None:
        where += f", branch {d.branch}"
    lines.append(f"{child_prefix}│  via tgd[{d.tgd_index}]: {d.tgd}  ({where})")
    if d.binding:
        bound = ", ".join(f"{name}={value}" for name, value in d.binding)
        lines.append(f"{child_prefix}│  binding: {bound}")
    for var, null in d.minted:
        lines.append(f"{child_prefix}│  minted: {null} ← {var}")
    if not node.children:
        return
    for index, child in enumerate(node.children):
        _render_node(
            child,
            source,
            lines,
            child_prefix,
            index == len(node.children) - 1,
            False,
        )


def render_derivation(
    graph: ProvenanceGraph,
    f: Fact,
    source: Optional[Instance] = None,
    branch: Optional[str] = None,
) -> str:
    """The derivation tree of *f* as printable text.

    Input facts render as ``[input]`` leaves (when *source* is given,
    only facts actually present in it get the tag; an underived fact
    outside the source renders bare).  Raises ``KeyError`` when *f* is
    neither derived nor an input fact.
    """
    derivation = graph.why(f, branch=branch)
    if derivation is None and (source is None or f not in source.facts):
        raise KeyError(f"no derivation recorded for fact {f}")
    tree = graph.derivation_tree(f, branch=branch)
    lines: List[str] = []
    _render_node(tree, source, lines, "", True, True)
    return "\n".join(lines)
