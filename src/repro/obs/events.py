"""Typed trace events emitted by the instrumented execution stack.

Every event is an immutable, picklable dataclass with a ``kind`` tag and
a :func:`event_to_dict` JSON projection, so the same objects serve three
consumers: the in-memory event bus (:mod:`repro.obs.tracer`), the
provenance graph (:mod:`repro.obs.provenance`), and the JSONL exporter
(:mod:`repro.obs.export`).  Worker processes ship event lists back to
the parent verbatim, which is why values stay as real :class:`Fact` /
:class:`Null` objects rather than strings — stringification happens only
at export time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Mapping, Optional, Tuple, Union

from ..instance import Fact
from ..terms import Null, Value, Var

#: A premise binding frozen into a sortable, hashable shape:
#: ``((variable name, value), ...)`` sorted by variable name.
Binding = Tuple[Tuple[str, Value], ...]


def freeze_binding(binding: Mapping[Var, Value]) -> Binding:
    """Freeze a ``{Var: Value}`` match into a canonical tuple form."""
    return tuple(sorted((var.name, value) for var, value in binding.items()))


@dataclass(frozen=True)
class TriggerFired:
    """One chase trigger fired: a tgd, a premise binding, the outcome.

    ``added`` holds the facts that were actually new (conclusion facts
    already present are not repeated); ``premises`` the instantiated
    premise atoms (the *why* of the firing); ``minted`` the fresh nulls
    created for existential variables, as ``(variable name, null)``
    pairs.  ``branch`` is ``None`` for the standard chase and the branch
    id for the disjunctive chase.
    """

    kind: ClassVar[str] = "trigger_fired"

    tgd: str
    tgd_index: int
    round: int
    binding: Binding
    added: Tuple[Fact, ...]
    premises: Tuple[Fact, ...]
    minted: Tuple[Tuple[str, Null], ...] = ()
    branch: Optional[str] = None
    disjunct_index: Optional[int] = None


@dataclass(frozen=True)
class NullMinted:
    """A fresh labeled null was created for an existential variable."""

    kind: ClassVar[str] = "null_minted"

    null: Null
    var: str
    tgd: str
    tgd_index: int
    round: int
    branch: Optional[str] = None


@dataclass(frozen=True)
class BranchOpened:
    """The disjunctive chase opened a branch (one disjunct of a firing).

    Roots (the input instance, or one quotient world of it) have
    ``parent is None`` and ``disjunct_index is None``.
    """

    kind: ClassVar[str] = "branch_opened"

    branch: str
    parent: Optional[str] = None
    disjunct_index: Optional[int] = None
    round: int = 0


@dataclass(frozen=True)
class BranchClosed:
    """A disjunctive-chase branch stopped being explored.

    ``reason`` is one of ``"finished"`` (no unsatisfied trigger — the
    branch is a result), ``"duplicate"`` (its instance equals an already
    finished one), ``"nonterminating"`` (per-branch round bound hit), or
    ``"exhausted"`` (the run's budget ran out while this world was still
    on the frontier; its current facts are returned as a partial
    result)."""

    kind: ClassVar[str] = "branch_closed"

    branch: str
    reason: str
    facts: int = 0


@dataclass(frozen=True)
class HomBacktrack:
    """Summary of one homomorphism search's backtracking effort.

    Emitted once per :func:`repro.homs.search.homomorphisms` run (also
    when the caller abandons the generator early); ``backtracks`` counts
    the candidate extensions rejected during the search."""

    kind: ClassVar[str] = "hom_backtrack"

    backtracks: int
    found: bool
    source_size: int
    target_size: int


@dataclass(frozen=True)
class ResourceExhausted:
    """A resource budget ran out inside a governed operation.

    Emitted once per exhaustion, in both ``on_exhausted`` modes: in
    ``"partial"`` mode it marks where the returned result was truncated;
    in ``"raise"`` mode it lands on the tracer just before the typed
    error propagates (so partial traces carry the diagnosis too).
    ``resource`` matches :class:`repro.limits.Exhausted`'s vocabulary
    (``deadline``/``rounds``/``facts``/``nulls``/``branches``/
    ``cancelled``/``injected``)."""

    kind: ClassVar[str] = "resource_exhausted"

    resource: str
    where: str
    limit: Optional[object] = None
    used: Optional[object] = None
    rounds: int = 0
    steps: int = 0


@dataclass(frozen=True)
class WorkerKilled:
    """The supervisor hard-killed a hung pool worker.

    Emitted by the engine once per terminated worker attempt when a
    batch runs under supervision (``Limits.grace`` armed): the worker's
    heartbeat stayed stale past the grace period and escalation ended
    it (see :mod:`repro.engine.supervisor`).  ``kills`` is the item's
    cumulative kill count so far (> 1 when retries were also killed);
    ``final`` says whether the item was given up on (``True``) or
    re-queued for another attempt.  ``trace_id``/``request_id`` carry
    the originating request's ambient
    :class:`repro.obs.context.TraceContext` (empty outside one), so a
    kill in a server worker pool is attributable to the HTTP request
    whose work hung."""

    kind: ClassVar[str] = "worker_killed"

    op: str
    batch_index: int
    kills: int = 1
    pid: Optional[int] = None
    final: bool = True
    trace_id: str = ""
    request_id: str = ""


@dataclass(frozen=True)
class CacheHit:
    """An engine cache served a result without recomputation."""

    kind: ClassVar[str] = "cache_hit"

    op: str
    key: str


@dataclass(frozen=True)
class CacheMiss:
    """An engine cache lookup missed; the result was computed fresh."""

    kind: ClassVar[str] = "cache_miss"

    op: str
    key: str


TraceEvent = Union[
    TriggerFired,
    NullMinted,
    BranchOpened,
    BranchClosed,
    HomBacktrack,
    ResourceExhausted,
    WorkerKilled,
    CacheHit,
    CacheMiss,
]


def exhaustion_event(diagnosis) -> ResourceExhausted:
    """Project a :class:`repro.limits.Exhausted` diagnosis onto an event."""
    return ResourceExhausted(
        resource=diagnosis.resource,
        where=diagnosis.where,
        limit=diagnosis.limit,
        used=diagnosis.used,
        rounds=diagnosis.rounds,
        steps=diagnosis.steps,
    )


def _jsonify(value: object) -> object:
    """Project one event field value onto JSON-safe primitives."""
    if isinstance(value, Fact):
        return str(value)
    if isinstance(value, Null):
        return str(value)
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def event_to_dict(event: TraceEvent) -> dict:
    """The JSON-safe dictionary form of an event (for the JSONL sink)."""
    out = {"kind": event.kind}
    for f in fields(event):
        out[f.name] = _jsonify(getattr(event, f.name))
    return out
