"""Observability & provenance: tracing, metrics, and why-provenance.

The subsystem has three layers:

1. an **event bus** — :class:`Tracer` with typed events
   (:class:`TriggerFired`, :class:`NullMinted`, :class:`BranchOpened` /
   :class:`BranchClosed`, :class:`HomBacktrack`, :class:`CacheHit` /
   :class:`CacheMiss`) and nested :class:`~repro.obs.tracer.Span`
   timing, near-zero overhead when no tracer is installed;
2. a **provenance graph** — :class:`ProvenanceGraph` with
   ``why(fact)`` / ``lineage(null)`` / ``derivation_tree(fact)``
   queries and exact chase replay (``replay`` / ``check_replay``);
3. **sinks** — :class:`MetricsRegistry` (counters + duration
   histograms), the JSONL exporter (:func:`write_trace_jsonl`), and
   the human renderers (:func:`render_span_tree`,
   :func:`render_derivation`).

Typical use::

    from repro import Instance, SchemaMapping, chase
    from repro.obs import tracing

    M = SchemaMapping.from_text("P(x, y, z) -> Q(x, y) & R(y, z)")
    with tracing() as tracer:
        result = chase(Instance.parse("P(a, b, c)"), M.dependencies)
    graph = tracer.provenance
    graph.why(next(iter(result.generated)))      # the minting firing
    graph.check_replay(Instance.parse("P(a, b, c)"), result.instance)

The instrumented call sites live in ``chase/``, ``homs/``, and
``engine/``; the CLI surfaces everything via ``--trace out.jsonl`` and
``repro explain``.

Two request-scoped layers ride on top: the ambient
:class:`TraceContext` (``trace_id``/``request_id`` propagated across
process boundaries and stamped onto every span, event, and registry
row — see ``docs/OBSERVABILITY.md`` §9) and the chase profiler
(:class:`ChaseProfiler` / :class:`ChaseProfile` /
:func:`render_profile` — ``EXPLAIN ANALYZE`` for the chase, §10).
"""

from .context import (
    TraceContext,
    context_scope,
    current_context,
    mint_context,
    set_context,
)
from .events import (
    Binding,
    BranchClosed,
    BranchOpened,
    CacheHit,
    CacheMiss,
    HomBacktrack,
    NullMinted,
    TraceEvent,
    TriggerFired,
    WorkerKilled,
    event_to_dict,
    freeze_binding,
)
from .export import (
    render_budget_summary,
    render_derivation,
    render_span_tree,
    spans_from_payload,
    spans_payload,
    trace_lines,
    write_trace_jsonl,
)
from .profile import (
    ChaseProfile,
    ChaseProfiler,
    DEP_SPAN_NAME,
    DependencyProfile,
    diff_profiles,
    fingerprint_dependency,
    render_profile,
)
from .metrics import (
    BucketedHistogram,
    Histogram,
    LOG_BUCKET_BOUNDS,
    MetricsRegistry,
    openmetrics_name,
)
from .progress import (
    ProgressReporter,
    current_reporter,
    progress_scope,
    set_reporter,
)
from .provenance import (
    BranchNode,
    Derivation,
    DerivationNode,
    NullBirth,
    ProvenanceGraph,
)
from .registry import (
    BaselineComparison,
    DEFAULT_DB_PATH,
    RunDiff,
    RunRegistry,
    RunRow,
    registry_from_env,
)
from .sinks import (
    JsonlSink,
    MultiSink,
    OpRecord,
    OpenMetricsSink,
    TelemetrySink,
)
from .tracer import (
    Span,
    Tracer,
    TraceState,
    current_tracer,
    maybe_span,
    set_tracer,
    tracing,
)

__all__ = [
    "BaselineComparison",
    "Binding",
    "BranchClosed",
    "BranchNode",
    "BranchOpened",
    "BucketedHistogram",
    "CacheHit",
    "CacheMiss",
    "ChaseProfile",
    "ChaseProfiler",
    "DEFAULT_DB_PATH",
    "DEP_SPAN_NAME",
    "DependencyProfile",
    "Derivation",
    "DerivationNode",
    "Histogram",
    "HomBacktrack",
    "JsonlSink",
    "LOG_BUCKET_BOUNDS",
    "MetricsRegistry",
    "MultiSink",
    "NullBirth",
    "NullMinted",
    "OpRecord",
    "OpenMetricsSink",
    "ProgressReporter",
    "ProvenanceGraph",
    "RunDiff",
    "RunRegistry",
    "RunRow",
    "Span",
    "TelemetrySink",
    "TraceContext",
    "TraceEvent",
    "TraceState",
    "Tracer",
    "TriggerFired",
    "WorkerKilled",
    "context_scope",
    "current_context",
    "current_reporter",
    "current_tracer",
    "diff_profiles",
    "event_to_dict",
    "fingerprint_dependency",
    "freeze_binding",
    "maybe_span",
    "mint_context",
    "openmetrics_name",
    "progress_scope",
    "registry_from_env",
    "render_budget_summary",
    "render_derivation",
    "render_profile",
    "render_span_tree",
    "set_context",
    "set_reporter",
    "set_tracer",
    "spans_from_payload",
    "spans_payload",
    "trace_lines",
    "tracing",
    "write_trace_jsonl",
]
