"""The worker supervisor: heartbeat-watched, hard-kill process pools.

``run_batch_isolated`` (:mod:`repro.engine.parallel`) contains item
failures and enforces deadlines *cooperatively*: a worker that honors
its budget checkpoints stops itself, and a worker that crashes reports
an error.  What it cannot handle is a worker that does **neither** — a
pathological chase wedged inside hom search, a deadlocked native call —
which hangs the whole batch forever.  This module is the escalation
path, modeled on the supervision patterns of production serving stacks
(bound each scenario's runtime; kill and respawn stragglers instead of
awaiting them):

* every worker runs as its **own supervised process** holding a shared
  heartbeat cell; the ambient progress-reporter hook inside the worker
  turns each cooperative :class:`repro.limits.Budget` checkpoint into a
  heartbeat (item id + live budget gauges), so the supervisor sees not
  just *that* the worker is alive but *where* it is;
* the supervisor polls result pipes and heartbeats; an item past its
  cooperative deadline first receives a **cooperative cancel** (a
  shared lock-free flag bridged to the worker's ambient
  :class:`repro.limits.CancelToken`);
* a worker whose heartbeat then stays stale for more than
  ``Limits.grace`` seconds is **terminated** (``SIGTERM``, escalating
  to ``SIGKILL``) and its slot **respawned** — the in-flight item is
  re-queued when retries remain (resuming with its remaining deadline
  via :func:`repro.engine.parallel._rebudgeted`) or failed as a
  :class:`repro.errors.WorkerKilled`, which the engine surfaces as a
  typed ``BatchItemError(kind="killed")``;
* the rest of the batch keeps running throughout: process-per-item
  leases mean a kill can never poison a shared pool queue, so
  "respawn" is simply starting the next lease in the freed slot.

Heartbeats extend a worker's life: the hard-kill instant for an item is
``max(deadline passed, last heartbeat) + grace``, so a worker that is
still cooperating (checkpointing while it unwinds a partial result) is
given time, while one that has gone silent is killed within
``deadline + grace`` of its start — the bound the CI smoke test
asserts.

SIGINT cooperates with supervision: the ambient
:class:`repro.limits.CancelToken` is polled every supervisor tick; on
cancellation every live worker gets the cooperative cancel immediately,
stragglers are killed after one grace period, finished results are
kept, and unfinished items resolve as ``Cancelled`` — so Ctrl-C during
a kill escalation still produces the partial dump and exit code 130.

Killed items are never cached (they produce no result) and never
poison telemetry: the engine records one error ``OpRecord`` per killed
item and counts kills in ``stats()``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import Cancelled, WorkerKilled
from ..limits import Exhausted, Limits
from ..limits.budget import current_cancel_token, set_cancel_token, CancelToken
from ..obs.progress import set_reporter
from .parallel import ItemOutcome, _rebudgeted, is_transient

#: How often the supervisor wakes to poll pipes, heartbeats, and the
#: ambient cancel token (seconds).  Kills therefore land within one
#: tick of their due time — negligible against any realistic grace.
SUPERVISOR_TICK = 0.05

#: Gauge slots in the shared heartbeat cell, in order.
_GAUGES = ("rounds", "steps", "facts", "nulls", "branches")


class HeartbeatCell:
    """One item's shared-memory heartbeat: a timestamp plus gauges.

    The worker side writes (monotonic timestamp, rounds, steps, facts,
    nulls, branches) on every budget checkpoint; the supervisor side
    reads them.  The cell is a **lock-free** ``RawArray``, deliberately:
    any cross-process lock here can be orphaned — a worker terminated
    (or exiting) mid-critical-section leaves the lock held forever and
    the supervisor's next read deadlocks.  Aligned 8-byte loads and
    stores are atomic on every platform CPython runs on, so the worst
    a lockless reader can see is a one-tick-stale gauge, never a hang.
    Created from the same multiprocessing context as the worker process
    so it travels by inheritance (fork) or pickling (spawn).
    """

    def __init__(self, ctx) -> None:
        """A fresh cell in *ctx*'s shared memory, beating 'now'."""
        self._cells = ctx.RawArray("d", 1 + len(_GAUGES))
        self._cells[0] = time.monotonic()

    def beat(self, **gauges: int) -> None:
        """Record one heartbeat (worker side).

        Gauges land before the timestamp so a reader that observes a
        fresh beat never pairs it with older gauges.
        """
        for slot, name in enumerate(_GAUGES, start=1):
            value = gauges.get(name)
            if value is not None:
                self._cells[slot] = float(value)
        self._cells[0] = time.monotonic()

    @property
    def last_beat(self) -> float:
        """Monotonic timestamp of the latest heartbeat (supervisor side)."""
        return self._cells[0]

    def gauges(self) -> Dict[str, int]:
        """The latest budget gauges shipped by the worker."""
        return {
            name: int(self._cells[slot])
            for slot, name in enumerate(_GAUGES, start=1)
        }


class _HeartbeatReporter:
    """A progress-reporter shim installed inside the worker process.

    Budgets adopt the ambient reporter at construction
    (:func:`repro.obs.progress.current_reporter`), so every cooperative
    checkpoint the chase/hom kernels already execute pumps the shared
    heartbeat cell — no kernel changes needed for supervision.
    """

    def __init__(self, cell: HeartbeatCell) -> None:
        self._cell = cell

    def heartbeat(
        self,
        where: str,
        rounds: int,
        steps: int,
        facts: Optional[int] = None,
        nulls: Optional[int] = None,
        branches: Optional[int] = None,
    ) -> None:
        """The :class:`repro.obs.ProgressReporter` duck-type hook."""
        self._cell.beat(
            rounds=rounds, steps=steps, facts=facts, nulls=nulls,
            branches=branches,
        )


def _bridge_cancel(flag, token: CancelToken, poll: float = 0.05) -> None:
    """Daemon-thread body: mirror the shared cancel *flag* into *token*.

    The supervisor's cooperative-cancel signal is a lock-free shared
    byte (``RawValue``), not a ``multiprocessing.Event``: an Event's
    internal lock can be orphaned by a worker that exits while its
    watcher thread is inside ``Event.wait`` — after which the
    supervisor's ``set()`` blocks forever.  A raw byte has no lock to
    orphan; budgets check a thread-backed :class:`CancelToken`, and
    this watcher is the bridge, running inside the worker process.
    """
    while not token.cancelled:
        if flag.value:
            token.cancel("supervisor")
            return
        time.sleep(poll)


def _worker_main(fn, payload, cell: HeartbeatCell, cancel_flag, conn) -> None:
    """Entry point of one supervised worker process.

    Installs the heartbeat reporter and the bridged cancel token as
    this process's ambient telemetry, runs the task, and ships exactly
    one ``(status, value)`` message back over the pipe.  Runs at module
    scope so it pickles by reference under spawn-based contexts.
    """
    cell.beat()
    token = CancelToken()
    set_cancel_token(token)
    set_reporter(_HeartbeatReporter(cell))
    watcher = threading.Thread(
        target=_bridge_cancel, args=(cancel_flag, token), daemon=True
    )
    watcher.start()
    try:
        value = fn(payload)
    except BaseException as error:  # ship the failure, whatever it is
        message = ("error", error)
    else:
        message = ("ok", value)
    try:
        conn.send(message)
    except Exception:
        # Unpicklable value/error (or a vanished parent): degrade to a
        # picklable description so the item fails loudly, not silently.
        try:
            conn.send(
                ("error", RuntimeError(f"worker result unpicklable: {message[1]!r}"))
            )
        except Exception:  # pragma: no cover - parent is gone
            pass
    finally:
        conn.close()


@dataclass
class _Lease:
    """Supervisor-side record of one running worker attempt."""

    index: int
    attempt: int
    payload: tuple
    process: Any
    conn: Any
    cell: HeartbeatCell
    cancel_flag: Any
    started: float
    soft_at: Optional[float]  # cooperative-cancel instant (deadline)
    soft_sent: bool = False
    gauges: Dict[str, int] = field(default_factory=dict)


def _item_deadline(payload: tuple) -> Optional[float]:
    """The per-item cooperative deadline riding in the payload, if any."""
    limits = payload[-3] if len(payload) >= 3 else None
    if isinstance(limits, Limits):
        return limits.deadline
    return None


def _killed_error(lease: _Lease, grace: float, now: float) -> WorkerKilled:
    """The typed error for a lease the supervisor had to terminate."""
    stale = now - max(lease.cell.last_beat, lease.started)
    diagnosis = Exhausted(
        resource="killed",
        where="engine.supervisor",
        limit=grace,
        used=f"heartbeat stale {stale:.2f}s past deadline",
        rounds=lease.gauges.get("rounds", 0),
        steps=lease.gauges.get("steps", 0),
    )
    return WorkerKilled(
        item=lease.index, pid=lease.process.pid, diagnosis=diagnosis
    )


def _cancelled_error(where: str = "engine.supervisor") -> Cancelled:
    """The typed error for items abandoned by a batch-wide cancellation."""
    return Cancelled(
        diagnosis=Exhausted(resource="cancelled", where=where, used="SIGINT")
    )


def _terminate(process, patience: float = 0.5) -> None:
    """SIGTERM the worker, escalating to SIGKILL if it lingers."""
    process.terminate()
    process.join(patience)
    if process.is_alive():  # pragma: no cover - SIGTERM blocked
        process.kill()
        process.join(patience)


class BatchSupervisor:
    """Runs one batch of payloads under heartbeat-based supervision.

    One instance per ``run_batch_supervised`` call; the class exists to
    keep the escalation state machine readable (queue, leases, kill
    bookkeeping) rather than to be reused.
    """

    def __init__(
        self,
        payloads: Sequence[tuple],
        fn: Callable[[tuple], Any],
        workers: int,
        retries: int,
        deadline: Optional[float],
        grace: float,
        clock: Callable[[], float],
        context,
    ) -> None:
        self.fn = fn
        self.workers = max(1, workers)
        self.retries = max(0, retries)
        self.grace = grace
        self.clock = clock
        self.ctx = context
        self.payloads: List[tuple] = list(payloads)
        self.outcomes: List[ItemOutcome] = [
            ItemOutcome(attempts=0) for _ in payloads
        ]
        self.queue: List[int] = list(range(len(self.payloads)))
        self.leases: Dict[int, _Lease] = {}
        self.attempts = [0] * len(self.payloads)
        self.kills = [0] * len(self.payloads)
        self.first_started: Dict[int, float] = {}
        self.deadline_at = (
            None if deadline is None else self.clock() + deadline
        )
        self.cancelled_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    def run(self) -> List[ItemOutcome]:
        """Drive the batch to completion; one outcome per payload."""
        try:
            while self.queue or self.leases:
                self._maybe_cancel()
                self._fill_slots()
                self._poll_results()
                self._escalate()
                self._drain_if_stopped()
        finally:
            for lease in self.leases.values():  # pragma: no cover - defense
                _terminate(lease.process)
        return self.outcomes

    def _spawn(self, index: int) -> None:
        """Start (or respawn) one worker process for item *index*."""
        payload = self.payloads[index]
        self.attempts[index] += 1
        cell = HeartbeatCell(self.ctx)
        # Lock-free cancel signal — see _bridge_cancel for why not Event.
        cancel_flag = self.ctx.RawValue("b", 0)
        parent_conn, child_conn = self.ctx.Pipe(duplex=False)
        process = self.ctx.Process(
            target=_worker_main,
            args=(self.fn, payload, cell, cancel_flag, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = self.clock()
        self.first_started.setdefault(index, now)
        item_deadline = _item_deadline(payload)
        self.leases[index] = _Lease(
            index=index,
            attempt=self.attempts[index],
            payload=payload,
            process=process,
            conn=parent_conn,
            cell=cell,
            cancel_flag=cancel_flag,
            started=now,
            soft_at=None if item_deadline is None else now + item_deadline,
        )

    def _fill_slots(self) -> None:
        while (
            self.queue
            and len(self.leases) < self.workers
            and not self._stopped()
        ):
            self._spawn(self.queue.pop(0))

    # -- result collection ----------------------------------------------

    def _poll_results(self) -> None:
        """Wait one tick for pipes; resolve every readable lease."""
        conns = [lease.conn for lease in self.leases.values()]
        if not conns:
            return
        ready = multiprocessing.connection.wait(conns, timeout=SUPERVISOR_TICK)
        if not ready:
            return
        by_conn = {lease.conn: lease for lease in self.leases.values()}
        for conn in ready:
            self._resolve(by_conn[conn])

    def _resolve(self, lease: _Lease) -> None:
        """One lease's pipe is readable: a result, an error, or EOF."""
        index = lease.index
        try:
            status, value = lease.conn.recv()
        except (EOFError, OSError):
            # The worker died without shipping a result (hard crash,
            # unpicklable payload under spawn, OOM kill).  Infra-level
            # breakage: transient, retryable.
            status, value = "error", OSError(
                f"worker pid {lease.process.pid} exited without a result"
            )
        self._close(lease)
        elapsed = self.clock() - self.first_started[index]
        if status == "ok":
            self.outcomes[index] = ItemOutcome(
                value=value,
                attempts=lease.attempt,
                elapsed=elapsed,
                kills=self.kills[index],
            )
            return
        self._fail_or_retry(index, lease, value, elapsed)

    def _fail_or_retry(
        self, index: int, lease: _Lease, error: BaseException, elapsed: float
    ) -> None:
        retryable = is_transient(error) or isinstance(error, WorkerKilled)
        if retryable and lease.attempt <= self.retries and not self._stopped():
            payload = _rebudgeted(self.payloads[index], elapsed)
            self.payloads[index] = payload[:-1] + (lease.attempt + 1,)
            self.queue.append(index)
            return
        self.outcomes[index] = ItemOutcome(
            error=error,
            attempts=lease.attempt,
            elapsed=elapsed,
            kills=self.kills[index],
        )

    def _close(self, lease: _Lease) -> None:
        """Retire a finished lease: reap the process, free the slot."""
        del self.leases[lease.index]
        try:
            lease.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        lease.process.join(0.5)
        if lease.process.is_alive():  # pragma: no cover - slow unwind
            _terminate(lease.process)

    # -- escalation ------------------------------------------------------

    def _escalate(self) -> None:
        """Cooperative cancel at the deadline; hard kill past grace."""
        now = self.clock()
        batch_expired = self.deadline_at is not None and now >= self.deadline_at
        for lease in list(self.leases.values()):
            soft_due = (
                (lease.soft_at is not None and now >= lease.soft_at)
                or batch_expired
                or self.cancelled_at is not None
            )
            if soft_due and not lease.soft_sent:
                lease.cancel_flag.value = 1
                lease.soft_sent = True
            if not soft_due:
                continue
            # The worker earns grace by heartbeating: kill only once it
            # has been silent for a full grace period after the soft
            # signal (or after its own deadline, whichever is later).
            soft_since = min(
                t for t in (
                    lease.soft_at,
                    self.deadline_at,
                    self.cancelled_at,
                ) if t is not None
            )
            quiet_since = max(lease.cell.last_beat, soft_since)
            if now - quiet_since >= self.grace:
                self._kill(lease, now)

    def _kill(self, lease: _Lease, now: float) -> None:
        """Terminate one hung worker and requeue or fail its item."""
        index = lease.index
        lease.gauges = lease.cell.gauges()
        _terminate(lease.process)
        self.kills[index] += 1
        del self.leases[index]
        try:
            lease.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        elapsed = now - self.first_started[index]
        error: BaseException
        if self.cancelled_at is not None:
            error = _cancelled_error()
        else:
            error = _killed_error(lease, self.grace, now)
        self._fail_or_retry(index, lease, error, elapsed)

    # -- batch-wide stop conditions --------------------------------------

    def _maybe_cancel(self) -> None:
        """Adopt an ambient cancellation (SIGINT) the moment it fires."""
        if self.cancelled_at is not None:
            return
        token = current_cancel_token()
        if token is not None and token.cancelled:
            self.cancelled_at = self.clock()

    def _stopped(self) -> bool:
        """No new work may start: batch deadline passed or cancelled."""
        if self.cancelled_at is not None:
            return True
        return self.deadline_at is not None and self.clock() >= self.deadline_at

    def _drain_if_stopped(self) -> None:
        """Fail queued (never-started) items once the batch is stopped."""
        if not self._stopped() or not self.queue:
            return
        for index in self.queue:
            if self.cancelled_at is not None:
                error: BaseException = _cancelled_error()
            else:
                error = _deadline_error()
            self.outcomes[index] = ItemOutcome(
                error=error,
                attempts=max(self.attempts[index], 1),
                elapsed=(
                    self.clock() - self.first_started[index]
                    if index in self.first_started
                    else 0.0
                ),
                kills=self.kills[index],
            )
        self.queue.clear()


def _deadline_error():
    """A batch-deadline exhaustion, matching ``run_batch_isolated``'s."""
    from ..errors import BudgetExhausted

    return BudgetExhausted(
        diagnosis=Exhausted(
            resource="deadline", where="engine.batch", used="batch deadline passed"
        )
    )


def run_batch_supervised(
    payloads: Sequence[tuple],
    fn: Callable[[tuple], Any],
    workers: int = 1,
    retries: int = 0,
    deadline: Optional[float] = None,
    grace: float = 1.0,
    clock: Callable[[], float] = time.monotonic,
    context=None,
) -> List[ItemOutcome]:
    """Run *fn* over *payloads* in supervised worker processes.

    The hard-kill counterpart of
    :func:`repro.engine.parallel.run_batch_isolated`: same payload
    contract (``(..., limits, fault, attempt)``), same ordered
    :class:`ItemOutcome` list, same transient-retry and batch-deadline
    semantics — plus heartbeat supervision.  A worker silent for more
    than *grace* seconds past its cooperative deadline is terminated
    and its slot respawned; the item retries (with its remaining
    deadline) while attempts remain, then fails as
    :class:`repro.errors.WorkerKilled`.  ``ItemOutcome.kills`` counts
    the terminations each item needed.

    Parameters
    ----------
    payloads:
        One task payload per batch item, ending with
        ``(limits, fault, attempt)`` as in :mod:`repro.engine.parallel`.
    fn:
        Module-level task function (must pickle by reference).
    workers:
        Max concurrently running worker processes (≥ 1).
    retries:
        Extra attempts for transiently failing *or killed* items.
    deadline:
        Wall-clock bound for the whole batch, seconds.
    grace:
        Heartbeat staleness past the deadline that triggers the kill.
    clock:
        Monotonic time source (overridable for tests).
    context:
        A ``multiprocessing`` context; default
        :func:`multiprocessing.get_context`.
    """
    if not payloads:
        return []
    ctx = context if context is not None else multiprocessing.get_context()
    supervisor = BatchSupervisor(
        payloads=payloads,
        fn=fn,
        workers=workers,
        retries=retries,
        deadline=deadline,
        grace=grace,
        clock=clock,
        context=ctx,
    )
    return supervisor.run()


def supervision_available() -> bool:
    """True when this host can run supervised pools at all.

    Needs working ``multiprocessing`` process spawning; sandboxed hosts
    without ``/dev/shm`` or fork permission fall back to the
    cooperative-only pool.
    """
    if os.environ.get("REPRO_NO_SUPERVISOR", "").strip() in ("1", "true", "yes"):
        return False
    try:
        multiprocessing.get_context()
        return True
    except Exception:  # pragma: no cover - exotic hosts
        return False


__all__ = [
    "BatchSupervisor",
    "HeartbeatCell",
    "SUPERVISOR_TICK",
    "run_batch_supervised",
    "supervision_available",
]
