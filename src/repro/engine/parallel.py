"""Executor selection, fault-isolated batch running, and task functions.

``chase_many``/``reverse_many`` fan unique work items out over
``concurrent.futures``.  The policy, per the engine design:

* **serial** when there is one job, one item, or one CPU — no pool can
  beat the plain loop there, and the batch path still wins through
  content-addressed dedup;
* **threads** for batches of small instances — task setup dominates, so
  the cheap pool is right even though the chase holds the GIL;
* **processes** for batches with large instances (``process_threshold``
  facts or more) — the chase is CPU-bound, instances and mappings are
  picklable, and fork-based workers amortize the serialization cost.

Batch execution is **fault isolated**: one item crashing (a worker
exception, a broken pool, an injected fault) no longer takes the whole
batch down.  :func:`run_batch_isolated` returns one
:class:`ItemOutcome` per payload — either a value or the exception that
killed the item — retries *transient* failures up to a retry budget,
and enforces an executor-level deadline by cancelling whatever has not
finished when time runs out.

Task functions live at module scope so they pickle by reference.  Every
payload ends with ``(..., limits, fault, attempt)``: ``limits`` is the
per-item :class:`repro.limits.Limits` (or ``None`` for legacy
behavior), ``fault`` the per-item :class:`repro.limits.Fault` from a
test/CI fault plan (or ``None``), and ``attempt`` the 1-based attempt
number — the retry loop resubmits the same payload with only the last
element bumped.  The element *before* the trailing triple is ``ctx``,
the caller's serialized :class:`repro.obs.context.TraceContext` (a
plain dict, or ``None`` outside a request): task functions restore it
as the worker's ambient context so spans and records produced in the
worker carry the originating request's ids."""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..chase.disjunctive import Branches, reverse_disjunctive_chase
from ..chase.standard import ChaseResult, chase
from ..errors import BudgetExhausted, FaultInjected
from ..instance import Instance
from ..limits import Exhausted, Fault, Limits, trip
from ..mappings.schema_mapping import SchemaMapping
from ..obs.context import TraceContext, context_scope
from ..obs.tracer import Tracer, TraceState

try:  # BrokenExecutor is 3.8+; keep the guard cheap and explicit
    from concurrent.futures import BrokenExecutor
except ImportError:  # pragma: no cover - ancient pythons only
    BrokenExecutor = OSError  # type: ignore[assignment,misc]

#: Failures worth retrying: injected crash faults (deterministically
#: transient by construction) and infrastructure-level breakage.  A
#: :class:`BudgetExhausted` is *not* transient — retrying an exhausted
#: budget would just exhaust it again.
_TRANSIENT = (FaultInjected, BrokenExecutor, OSError, ConnectionError)


def is_transient(error: BaseException) -> bool:
    """True when a retry of *error* would plausibly succeed."""
    return isinstance(error, _TRANSIENT) and not isinstance(error, BudgetExhausted)


@dataclass
class ItemOutcome:
    """One batch item's fate: a value or the exception that ended it.

    ``elapsed`` is the item's wall time across *all* its attempts
    (first submission to final resolution), so failed items get their
    cost attributed in ``engine.stats()`` just like successful ones.
    ``kills`` counts hard terminations the item's workers needed — it
    stays 0 on this cooperative pool and is populated only by the
    supervised runner (:mod:`repro.engine.supervisor`).
    """

    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1
    elapsed: float = 0.0
    kills: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def _deadline_exhausted(attempts: int, elapsed: float = 0.0) -> ItemOutcome:
    """The outcome recorded for items still unfinished at the deadline."""
    diagnosis = Exhausted(
        resource="deadline", where="engine.batch", used="batch deadline passed"
    )
    return ItemOutcome(
        error=BudgetExhausted(diagnosis=diagnosis),
        attempts=attempts,
        elapsed=elapsed,
    )


def _rebudgeted(payload: tuple, elapsed: float) -> tuple:
    """Carry an item's spent time into its retry payload.

    A retried item continues the *same* per-item budget rather than
    restarting its deadline from zero: ``limits`` sits at
    ``payload[-3]`` (the payload-shape contract above), and the retry
    ships a replacement whose deadline is the original minus the wall
    time already burned, floored at zero so a hopeless retry still
    resolves promptly as deadline-exhausted instead of running another
    full deadline's worth of work.
    """
    limits = payload[-3] if len(payload) >= 3 else None
    if not isinstance(limits, Limits) or limits.deadline is None:
        return payload
    remaining = max(0.0, limits.deadline - elapsed)
    return payload[:-3] + (limits.replace(deadline=remaining),) + payload[-2:]


def _scope(ctx: Optional[dict]):
    """The worker-side ambient-context scope for a payload's ``ctx``."""
    if ctx:
        return context_scope(TraceContext.from_dict(ctx))
    return nullcontext()


def chase_task(
    payload: Tuple[
        SchemaMapping, Instance, str, Optional[dict], Optional[Limits], Optional[Fault], int
    ]
) -> ChaseResult:
    """Chase one instance (runs inside a worker; must stay picklable)."""
    mapping, instance, variant, ctx, limits, fault, attempt = payload
    trip(fault, attempt)
    with _scope(ctx):
        return chase(instance, mapping.dependencies, variant=variant, limits=limits)


def chase_task_traced(
    payload: Tuple[
        SchemaMapping, Instance, str, Optional[dict], Optional[Limits], Optional[Fault], int
    ]
) -> Tuple[ChaseResult, TraceState]:
    """Chase one instance under a private tracer; ship the trace back.

    Worker processes cannot share the parent's tracer, so each traced
    task records into a fresh local tracer and returns its picklable
    :class:`TraceState`; the engine absorbs the states on join.  The
    same shape runs in thread-pool and serial batches for uniformity.
    """
    mapping, instance, variant, ctx, limits, fault, attempt = payload
    trip(fault, attempt)
    local = Tracer()
    with _scope(ctx):
        result = chase(
            instance, mapping.dependencies, variant=variant, tracer=local, limits=limits
        )
    return result, local.export_state()


def reverse_task(
    payload: Tuple[
        SchemaMapping, Instance, int, bool, Optional[dict], Optional[Limits], Optional[Fault], int
    ]
) -> Branches:
    """Reverse-chase one target instance inside a worker."""
    mapping, target, max_nulls, minimize, ctx, limits, fault, attempt = payload
    trip(fault, attempt)
    with _scope(ctx):
        if mapping.is_disjunctive() or mapping.uses_inequality():
            return reverse_disjunctive_chase(
                target,
                mapping.dependencies,
                result_relations=mapping.target.names,
                max_nulls=max_nulls,
                minimize=minimize,
                limits=limits,
            )
        result = chase(target, mapping.dependencies, limits=limits)
    branches = Branches([result.restricted_to(mapping.target.names)])
    branches.exhausted = result.exhausted
    return branches


def reverse_task_traced(
    payload: Tuple[
        SchemaMapping, Instance, int, bool, Optional[dict], Optional[Limits], Optional[Fault], int
    ]
) -> Tuple[Branches, TraceState]:
    """Traced counterpart of :func:`reverse_task`.

    See :func:`chase_task_traced` for the per-worker tracer protocol."""
    mapping, target, max_nulls, minimize, ctx, limits, fault, attempt = payload
    trip(fault, attempt)
    local = Tracer()
    with _scope(ctx):
        if mapping.is_disjunctive() or mapping.uses_inequality():
            branches = reverse_disjunctive_chase(
                target,
                mapping.dependencies,
                result_relations=mapping.target.names,
                max_nulls=max_nulls,
                minimize=minimize,
                limits=limits,
                tracer=local,
            )
        else:
            result = chase(target, mapping.dependencies, tracer=local, limits=limits)
            branches = Branches([result.restricted_to(mapping.target.names)])
            branches.exhausted = result.exhausted
    return branches, local.export_state()


def make_executor(
    jobs: int, items: int, largest: int, process_threshold: int
) -> Optional[Executor]:
    """Pick an executor for a batch, or ``None`` for the serial loop."""
    workers = min(jobs, items)
    if workers <= 1 or (os.cpu_count() or 1) <= 1:
        return None
    if largest >= process_threshold:
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError):  # pragma: no cover - sandboxed hosts
            pass
    return ThreadPoolExecutor(max_workers=workers)


def run_batch(tasks: Sequence, fn, executor: Optional[Executor]) -> list:
    """Run *fn* over *tasks*, preserving order; serial when no executor.

    The legacy all-or-nothing runner: the first exception propagates and
    abandons the batch.  Kept for callers that want exactly that
    (``on_error="raise"`` with no retries); everything else goes through
    :func:`run_batch_isolated`.
    """
    if executor is None:
        return [fn(task) for task in tasks]
    with executor:
        return list(executor.map(fn, tasks))


def run_batch_isolated(
    payloads: Sequence[tuple],
    fn,
    executor: Optional[Executor],
    retries: int = 0,
    deadline: Optional[float] = None,
    clock=time.monotonic,
) -> List[ItemOutcome]:
    """Run *fn* over *payloads* with per-item fault isolation.

    Returns one :class:`ItemOutcome` per payload, in payload order; no
    item's failure affects any other item.  Transient failures (see
    :func:`is_transient`) are retried up to *retries* extra attempts,
    resubmitting the payload with its trailing attempt counter bumped.
    *deadline* is a wall-clock duration (seconds) for the whole batch:
    items unfinished when it passes are cancelled (or, if already
    running, left to stop cooperatively via the deadline inside their
    own ``Limits``) and reported as deadline-exhausted outcomes.
    """
    deadline_at = None if deadline is None else clock() + deadline

    def expired() -> bool:
        return deadline_at is not None and clock() >= deadline_at

    outcomes: List[ItemOutcome] = [ItemOutcome(attempts=0) for _ in payloads]

    if executor is None:
        for index, payload in enumerate(payloads):
            attempt = 1
            started = clock()
            while True:
                if expired():
                    outcomes[index] = _deadline_exhausted(
                        attempt - 1, elapsed=clock() - started
                    )
                    break
                try:
                    value = fn(payload)
                    outcomes[index] = ItemOutcome(
                        value=value, attempts=attempt, elapsed=clock() - started
                    )
                    break
                except Exception as error:
                    if is_transient(error) and attempt <= retries and not expired():
                        attempt += 1
                        payload = _rebudgeted(payload, clock() - started)
                        payload = payload[:-1] + (attempt,)
                        continue
                    outcomes[index] = ItemOutcome(
                        error=error, attempts=attempt, elapsed=clock() - started
                    )
                    break
        return outcomes

    with executor:
        info: dict = {}
        pending = set()
        started: dict = {}
        for index, payload in enumerate(payloads):
            started[index] = clock()
            try:
                future = executor.submit(fn, payload)
            except Exception as error:  # pragma: no cover - broken pool
                outcomes[index] = ItemOutcome(
                    error=error, attempts=1, elapsed=clock() - started[index]
                )
                continue
            info[future] = (index, 1, payload)
            pending.add(future)
        while pending:
            timeout = (
                None if deadline_at is None else max(0.0, deadline_at - clock())
            )
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Deadline passed with work still outstanding: cancel what
                # has not started; running items stop cooperatively via
                # the deadline in their own Limits (if any).
                for future in pending:
                    future.cancel()
                    index, attempts, _payload = info[future]
                    outcomes[index] = _deadline_exhausted(
                        attempts, elapsed=clock() - started[index]
                    )
                executor.shutdown(wait=False, cancel_futures=True)
                break
            for future in done:
                index, attempts, payload = info.pop(future)
                elapsed = clock() - started[index]
                try:
                    outcomes[index] = ItemOutcome(
                        value=future.result(), attempts=attempts, elapsed=elapsed
                    )
                    continue
                except Exception as error:
                    caught = error
                if is_transient(caught) and attempts <= retries and not expired():
                    retry_payload = _rebudgeted(payload, elapsed)
                    retry_payload = retry_payload[:-1] + (attempts + 1,)
                    try:
                        future = executor.submit(fn, retry_payload)
                    except Exception:  # pragma: no cover - broken pool
                        outcomes[index] = ItemOutcome(
                            error=caught, attempts=attempts, elapsed=elapsed
                        )
                        continue
                    info[future] = (index, attempts + 1, retry_payload)
                    pending.add(future)
                else:
                    outcomes[index] = ItemOutcome(
                        error=caught, attempts=attempts, elapsed=elapsed
                    )
    return outcomes
