"""Executor selection and picklable task functions for batch fan-out.

``chase_many``/``reverse_many`` fan unique work items out over
``concurrent.futures``.  The policy, per the engine design:

* **serial** when there is one job, one item, or one CPU — no pool can
  beat the plain loop there, and the batch path still wins through
  content-addressed dedup;
* **threads** for batches of small instances — task setup dominates, so
  the cheap pool is right even though the chase holds the GIL;
* **processes** for batches with large instances (``process_threshold``
  facts or more) — the chase is CPU-bound, instances and mappings are
  picklable, and fork-based workers amortize the serialization cost.

Task functions live at module scope so they pickle by reference."""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..chase.disjunctive import reverse_disjunctive_chase
from ..chase.standard import ChaseResult, chase
from ..instance import Instance
from ..mappings.schema_mapping import SchemaMapping
from ..obs.tracer import Tracer, TraceState


def chase_task(payload: Tuple[SchemaMapping, Instance, str]) -> ChaseResult:
    """Chase one instance (runs inside a worker; must stay picklable)."""
    mapping, instance, variant = payload
    return chase(instance, mapping.dependencies, variant=variant)


def chase_task_traced(
    payload: Tuple[SchemaMapping, Instance, str]
) -> Tuple[ChaseResult, TraceState]:
    """Chase one instance under a private tracer; ship the trace back.

    Worker processes cannot share the parent's tracer, so each traced
    task records into a fresh local tracer and returns its picklable
    :class:`TraceState`; the engine absorbs the states on join.  The
    same shape runs in thread-pool and serial batches for uniformity.
    """
    mapping, instance, variant = payload
    local = Tracer()
    result = chase(instance, mapping.dependencies, variant=variant, tracer=local)
    return result, local.export_state()


def reverse_task(
    payload: Tuple[SchemaMapping, Instance, int, bool, int]
) -> List[Instance]:
    """Reverse-chase one target instance inside a worker."""
    mapping, target, max_nulls, minimize, max_branches = payload
    if mapping.is_disjunctive() or mapping.uses_inequality():
        return reverse_disjunctive_chase(
            target,
            mapping.dependencies,
            result_relations=mapping.target.names,
            max_nulls=max_nulls,
            minimize=minimize,
            max_branches=max_branches,
        )
    result = chase(target, mapping.dependencies)
    return [result.restricted_to(mapping.target.names)]


def reverse_task_traced(
    payload: Tuple[SchemaMapping, Instance, int, bool, int]
) -> Tuple[List[Instance], TraceState]:
    """Traced counterpart of :func:`reverse_task` (see
    :func:`chase_task_traced` for the per-worker tracer protocol)."""
    mapping, target, max_nulls, minimize, max_branches = payload
    local = Tracer()
    if mapping.is_disjunctive() or mapping.uses_inequality():
        branches = reverse_disjunctive_chase(
            target,
            mapping.dependencies,
            result_relations=mapping.target.names,
            max_nulls=max_nulls,
            minimize=minimize,
            max_branches=max_branches,
            tracer=local,
        )
    else:
        result = chase(target, mapping.dependencies, tracer=local)
        branches = [result.restricted_to(mapping.target.names)]
    return branches, local.export_state()


def make_executor(
    jobs: int, items: int, largest: int, process_threshold: int
) -> Optional[Executor]:
    """Pick an executor for a batch, or ``None`` for the serial loop."""
    workers = min(jobs, items)
    if workers <= 1 or (os.cpu_count() or 1) <= 1:
        return None
    if largest >= process_threshold:
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError):  # pragma: no cover - sandboxed hosts
            pass
    return ThreadPoolExecutor(max_workers=workers)


def run_batch(tasks: Sequence, fn, executor: Optional[Executor]) -> list:
    """Run *fn* over *tasks*, preserving order; serial when no executor."""
    if executor is None:
        return [fn(task) for task in tasks]
    with executor:
        return list(executor.map(fn, tasks))
