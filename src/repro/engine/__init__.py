"""The exchange engine: cached, parallel execution behind one API.

:class:`ExchangeEngine` is the recommended entry point for all exchange
operations::

    from repro import ExchangeEngine, SchemaMapping, Instance

    engine = ExchangeEngine()
    M = SchemaMapping.from_text("P(x, y, z) -> Q(x, y) & R(y, z)")
    U = engine.chase(M, Instance.parse("P(a, b, c)"))
    engine.chase(M, Instance.parse("P(a, b, c)"))   # served from cache
    engine.stats()["chase"]["hits"]                 # 1

A module-level **default engine** backs the classic free-function API
(``SchemaMapping.chase``, ``reverse_exchange``, ...), so existing call
sites transparently gain caching; :func:`set_default_engine` swaps it
(e.g. for a ``--no-cache`` run or an isolated test session).
"""

from __future__ import annotations

import threading
from typing import Optional

from .cache import CacheStats, LRUCache
from .engine import ExchangeEngine
from .supervisor import run_batch_supervised, supervision_available
from .results import (
    AuditReport,
    CacheProvenance,
    ExchangeResult,
    OperationStats,
    ReverseResult,
)

_default_engine: Optional[ExchangeEngine] = None
_default_lock = threading.Lock()


def get_default_engine() -> ExchangeEngine:
    """The process-wide engine behind the facade API (created lazily)."""
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = ExchangeEngine()
    return _default_engine


def set_default_engine(engine: Optional[ExchangeEngine]) -> Optional[ExchangeEngine]:
    """Replace the default engine; returns the previous one.

    Passing ``None`` resets to lazy re-creation.  Typical uses: install
    an engine with caching disabled, a larger cache, or a ``jobs``
    default; or isolate cache state in tests.
    """
    global _default_engine
    with _default_lock:
        previous = _default_engine
        _default_engine = engine
    return previous


__all__ = [
    "AuditReport",
    "CacheProvenance",
    "CacheStats",
    "ExchangeEngine",
    "ExchangeResult",
    "LRUCache",
    "OperationStats",
    "ReverseResult",
    "get_default_engine",
    "run_batch_supervised",
    "set_default_engine",
    "supervision_available",
]
