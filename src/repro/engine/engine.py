"""The :class:`ExchangeEngine` — a cached, parallel exchange session.

Every free-function entry point in the library recomputes from scratch;
the engine is the stateful counterpart that amortizes work across
calls.  It holds content-addressed caches — keyed by ``(mapping digest,
instance digest, options)`` — for chase results, disjunctive-chase
branch sets, homomorphism-existence verdicts, cores, audits, and
reverse certain answers, with size-bounded LRU eviction; and it fans
batch operations out over ``concurrent.futures`` (processes for large
instances, threads or a serial loop below the size threshold).

Because the chase, the disjunctive chase, and ``core`` are
deterministic, caching is semantically transparent: a cache hit returns
exactly the instance the computation would have produced, down to null
names.  The caches are therefore safe to leave on everywhere, and the
module-level default engine (:func:`repro.engine.get_default_engine`)
is wired behind ``SchemaMapping.chase``/``reverse_chase`` so existing
call sites gain caching without changing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace
from threading import Lock
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..chase.disjunctive import reverse_disjunctive_chase
from ..chase.standard import ChaseResult, chase
from ..errors import BatchItemError, WorkerKilled
from ..instance import Instance
from ..limits import (
    Exhausted,
    FaultPlan,
    Limits,
    current_fault_plan,
    resolve_limits,
)
from ..logic.dependencies import Tgd
from ..mappings.schema_mapping import SchemaMapping
from ..obs.context import current_context
from ..obs.events import CacheHit, CacheMiss
from ..obs.events import WorkerKilled as WorkerKilledEvent
from ..obs.profile import ChaseProfile, ChaseProfiler
from ..obs.registry import RunRegistry
from ..obs.sinks import OpRecord, OpenMetricsSink, TelemetrySink
from ..obs.tracer import Tracer, current_tracer, maybe_span
from ..store import open_store
from .cache import LRUCache, TieredCache
from .parallel import (
    ItemOutcome,
    chase_task,
    chase_task_traced,
    make_executor,
    reverse_task,
    reverse_task_traced,
    run_batch_isolated,
)
from .supervisor import run_batch_supervised, supervision_available
from .results import (
    AuditReport,
    CacheProvenance,
    ExchangeResult,
    OperationStats,
    ReverseResult,
)

_OPS = ("chase", "reverse", "hom", "core", "audit", "answer")

_ON_ERROR = ("raise", "skip")

#: The disjunctive reverse chase's historical guards, as a ``Limits``
#: base layer (per-call/engine limits are merged on top of it).
_LEGACY_REVERSE = Limits(max_rounds=32, on_exhausted="raise")


@dataclass
class _OpCounters:
    """Per-operation work accounting (compute time only, not hits).

    ``error_wall_time`` attributes the wall clock burned by *failed*
    items (all their attempts) separately from ``wall_time``, so a
    batch where half the items crashed still shows where the time went.
    ``kills`` counts hung pool workers the supervisor had to terminate
    (see :mod:`repro.engine.supervisor`) — including kills on attempts
    that later retried successfully.  ``triggers`` accumulates the
    premise bindings the chase loop enumerated
    (:attr:`~repro.chase.standard.ChaseResult.triggers_considered`) —
    with semi-naive evaluation it grows much slower than naive
    re-matching would.
    """

    calls: int = 0
    wall_time: float = 0.0
    steps: int = 0
    rounds: int = 0
    triggers: int = 0
    branches: int = 0
    errors: int = 0
    error_wall_time: float = 0.0
    kills: int = 0


def _exhausted_tag(exhausted: Optional[Exhausted]) -> Optional[str]:
    """The registry/sink vocabulary for a diagnosis: its resource name."""
    return None if exhausted is None else exhausted.resource


class ExchangeEngine:
    """A session object for exchange operations with caching and fan-out.

    Parameters
    ----------
    cache_size:
        Max entries *per operation cache* (LRU eviction past it).
    enable_cache:
        ``False`` degrades every cache to always-miss (``--no-cache``).
    jobs:
        Default worker count for ``chase_many``/``reverse_many`` when
        the call does not pass its own.
    process_threshold:
        Batches whose largest instance has at least this many facts use
        a process pool; smaller batches use threads or the serial loop.
    tracer:
        An :class:`repro.obs.Tracer` to receive cache hit/miss events,
        spans, and chase provenance.  When ``None`` (the default) the
        ambient tracer (:func:`repro.obs.current_tracer`) is consulted
        per call, so ``with tracing(): engine.chase(...)`` also works.
        Batch operations run each worker under a private tracer and
        merge the per-worker traces on join.
    limits:
        Engine-level default :class:`repro.limits.Limits`; per-call
        ``limits`` merge on top of it (:func:`repro.limits.resolve_limits`).
        ``None`` (the default) keeps the historical unlimited/raise
        behavior.  Results truncated by a budget are tagged
        (``result.exhausted``) and never cached — the caches hold only
        completed, limit-independent results.
    retries:
        Default retry budget for batch items that fail *transiently*
        (injected crash faults, broken pools, OS-level errors).  Budget
        exhaustion is never retried.
    on_error:
        Default per-item failure policy for ``chase_many`` /
        ``reverse_many``: ``"raise"`` (historical — the first failure
        propagates) or ``"skip"`` (each failed item resolves to a
        :class:`repro.errors.BatchItemError` in its input position and
        the rest of the batch completes).
    sink:
        A :class:`repro.obs.TelemetrySink` (JSONL, OpenMetrics, or a
        :class:`repro.obs.MultiSink` fan-out) that receives one
        :class:`repro.obs.OpRecord` per operation — including per-item
        records for batch operations, and error records for failed
        compute.  ``None`` (the default) keeps the telemetry path at a
        pair of attribute reads per op.
    registry:
        A :class:`repro.obs.RunRegistry` — the persistent SQLite run
        history — that receives the same per-op records.  Sink and
        registry are independent: either, both, or neither.
    store:
        Backend spec for the SQL-chase working store (the CLI's
        ``--store`` values): ``"memory"`` (default; the SQL chase, when
        enabled, still runs in an in-memory SQLite database),
        ``"sqlite"`` / ``"sqlite:<path>"``, or ``"duckdb"`` /
        ``"duckdb:<path>"`` (optional dependency) to spill the chase to
        disk.  A path-based store is scratch space: it is recreated
        (``fresh=True``) for every operation that uses it.
    sql_chase:
        ``True`` switches :meth:`exchange` to the set-at-a-time SQL
        plan compiler (:func:`repro.store.sql_chase`) whenever the
        mapping is non-disjunctive and the variant is ``restricted``;
        dependencies outside the compilable fragment fall back to
        tuple-at-a-time per round.  Results are hom-equivalent to the
        in-memory chase (identical for full tgds), so SQL-chased
        results are cached under a distinct key tag.
    sql_jobs:
        Shard count for SQL-chase rounds (default 1, serial).  Values
        above 1 partition each round's trigger queries by
        ``rowid % sql_jobs`` and evaluate the shards on a thread pool
        over per-shard reader connections; output is fact-for-fact
        identical to serial, so results share the same cache entries.
    disk_cache:
        A persistent backing cache layered **under** every in-memory
        LRU: a :class:`repro.service.DiskCache` (or any object with
        its ``get``/``put`` surface), or a directory path to open one
        at.  Reads fall through memory to disk and promote on hit;
        writes go to both tiers; partial (exhausted) results are still
        never cached.  Because every cache key is a content digest,
        entries persist correctly across processes and restarts — this
        is what lets ``repro serve`` answer from disk on its first
        request after a restart.  Ignored when ``enable_cache`` is
        ``False``.
    profile:
        ``True`` attaches a :class:`repro.obs.ChaseProfiler` to every
        single-item chase and reverse chase, collecting per-dependency
        × per-round attribution (self time, triggers considered/fired,
        facts, nulls).  The resulting :class:`repro.obs.ChaseProfile`
        is exposed as :attr:`last_profile` after each computed
        operation (``None`` after cache hits) and persisted as a JSON
        summary in the registry row's ``metrics`` payload.  Profiling
        never changes chase output — the profiled instance is
        byte-identical to the unprofiled one.
    """

    def __init__(
        self,
        cache_size: int = 512,
        enable_cache: bool = True,
        jobs: Optional[int] = None,
        process_threshold: int = 200,
        tracer: Optional[Tracer] = None,
        limits: Optional[Limits] = None,
        retries: int = 0,
        on_error: str = "raise",
        sink: Optional[TelemetrySink] = None,
        registry: Optional[RunRegistry] = None,
        store: str = "memory",
        sql_chase: bool = False,
        sql_jobs: int = 1,
        disk_cache=None,
        profile: bool = False,
    ) -> None:
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        if store != "memory" and not store.startswith(("sqlite", "duckdb")):
            raise ValueError(
                f"unknown store spec {store!r}; expected 'memory', "
                "'sqlite[:<path>]', or 'duckdb[:<path>]'"
            )
        if sql_jobs < 1:
            raise ValueError(f"sql_jobs must be >= 1, got {sql_jobs!r}")
        size = cache_size if enable_cache else 0
        self.disk_cache = None
        if disk_cache is not None and enable_cache:
            if isinstance(disk_cache, str):
                from ..service.diskcache import DiskCache

                disk_cache = DiskCache(disk_cache)
            self.disk_cache = disk_cache
        if self.disk_cache is not None:
            self._caches: Dict[str, LRUCache] = {
                op: TieredCache(LRUCache(size), self.disk_cache, op)
                for op in _OPS
            }
        else:
            self._caches = {op: LRUCache(size) for op in _OPS}
        self._ops: Dict[str, _OpCounters] = {op: _OpCounters() for op in _OPS}
        self._ops_lock = Lock()
        self.jobs = jobs
        self.process_threshold = process_threshold
        self.tracer = tracer
        self.limits = limits
        self.retries = retries
        self.on_error = on_error
        self.sink = sink
        self.registry = registry
        self.store_spec = store
        self.sql_chase = sql_chase
        self.sql_jobs = sql_jobs
        self.profile = profile
        self.last_profile: Optional[ChaseProfile] = None
        self._clock = time.perf_counter

    def _tracer(self) -> Optional[Tracer]:
        """The effective tracer for this call (own, else ambient)."""
        if self.tracer is not None:
            return self.tracer if self.tracer.enabled else None
        return current_tracer()

    @staticmethod
    def _cache_event(
        tracer: Optional[Tracer], op: str, key: tuple, hit: bool
    ) -> None:
        if tracer is not None:
            key_id = ExchangeEngine._key_id(key)
            tracer.emit(
                CacheHit(op=op, key=key_id) if hit else CacheMiss(op=op, key=key_id)
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _record(
        self,
        op: str,
        wall_time: float = 0.0,
        steps: int = 0,
        rounds: int = 0,
        triggers: int = 0,
        branches: int = 0,
        calls: int = 1,
        errors: int = 0,
        error_wall_time: float = 0.0,
        kills: int = 0,
    ) -> None:
        with self._ops_lock:
            counters = self._ops[op]
            counters.calls += calls
            counters.wall_time += wall_time
            counters.steps += steps
            counters.rounds += rounds
            counters.triggers += triggers
            counters.branches += branches
            counters.errors += errors
            counters.error_wall_time += error_wall_time
            counters.kills += kills

    @property
    def _telemetry(self) -> bool:
        """Is any sink or registry configured?  (The off-path guard.)"""
        return self.sink is not None or self.registry is not None

    def _emit(
        self, record: OpRecord, metrics: Optional[dict] = None
    ) -> None:
        """Flush one operation record to the sink and the registry.

        Records that do not already carry a trace/request id are
        stamped with the ambient :class:`repro.obs.context.TraceContext`
        here — the one choke point every operation's telemetry flows
        through — so CLI- and service-originated records correlate to
        their request without each call site repeating the lookup.
        *metrics* (the profile summary, stitched spans, …) rides only
        the registry row's JSON payload, never the sink stream.
        """
        if not record.trace_id:
            context = current_context()
            if context is not None:
                record = dc_replace(
                    record,
                    trace_id=context.trace_id,
                    request_id=context.request_id,
                )
        if self.sink is not None:
            self.sink.record(record)
        if self.registry is not None:
            self.registry.record(record, metrics=metrics)

    def close_telemetry(self) -> None:
        """Flush and close the configured sink and registry (idempotent).

        An :class:`repro.obs.OpenMetricsSink` absorbs the effective
        tracer's metrics registry first, so span-duration histograms
        and event counters land in the same exposition file as the
        per-op counters.
        """
        tracer = self._tracer()
        if tracer is not None and isinstance(self.sink, OpenMetricsSink):
            self.sink.extra = tracer.metrics
        if self.sink is not None:
            self.sink.close()
        if self.registry is not None:
            self.registry.close()

    @staticmethod
    def _key_id(key: tuple) -> str:
        """A compact human-readable rendering of a cache key."""
        return ":".join(
            part[:12] if isinstance(part, str) and len(part) > 12 else str(part)
            for part in key
        )

    # ------------------------------------------------------------------
    # Forward exchange
    # ------------------------------------------------------------------

    def exchange(
        self,
        mapping: SchemaMapping,
        source: Instance,
        variant: str = "restricted",
        limits: Optional[Limits] = None,
    ) -> ExchangeResult:
        """``chase_M(I)`` as a normalized :class:`ExchangeResult`.

        *limits* merges over the engine's default limits.  The cache key
        deliberately excludes limits: a chase that *completes* under a
        budget is identical to the unlimited chase (determinism), so a
        cached completed result is correct for every budget; partial
        (exhausted) results are returned tagged but never cached.

        With ``sql_chase=True`` on the engine, non-disjunctive
        restricted chases compile to SQL plans executed in a SQLite
        store (see :mod:`repro.store.sqlplan`); null *names* may then
        differ from the tuple-at-a-time result, so those entries cache
        under a ``"sql"``-tagged key and never alias tuple-chase
        results.
        """
        effective = resolve_limits(limits, self.limits)
        use_sql = (
            self.sql_chase
            and variant == "restricted"
            and all(isinstance(dep, Tgd) for dep in mapping.dependencies)
        )
        key = ("chase", mapping.digest(), source.digest(), variant)
        if use_sql:
            key = key + ("sql",)
        tracer = self._tracer()
        hit, entry = self._caches["chase"].get(key)
        self._cache_event(tracer, "chase", key, hit)
        elapsed = 0.0
        self.last_profile = None
        profiler = (
            ChaseProfiler() if self.profile and not use_sql and not hit else None
        )
        if not hit:
            start = self._clock()
            try:
                with maybe_span(tracer, "engine.chase", key=self._key_id(key)):
                    if use_sql:
                        result = self._sql_chase_result(
                            mapping, source, tracer, effective
                        )
                    else:
                        result = chase(
                            source,
                            mapping.dependencies,
                            variant=variant,
                            tracer=tracer,
                            limits=effective,
                            profiler=profiler,
                        )
            except Exception as error:
                elapsed = self._clock() - start
                self._record(
                    "chase", calls=1, errors=1, error_wall_time=elapsed
                )
                if self._telemetry:
                    self._emit(
                        OpRecord(
                            op="chase",
                            mapping_digest=key[1],
                            instance_digest=key[2],
                            wall_time=elapsed,
                            error=type(error).__name__,
                            exhausted=_exhausted_tag(
                                getattr(error, "diagnosis", None)
                            ),
                        )
                    )
                raise
            restricted = result.restricted_to(mapping.target.names)
            elapsed = self._clock() - start
            entry = (result, restricted)
            if result.exhausted is None:
                self._caches["chase"].put(key, entry)
            self._record(
                "chase",
                wall_time=elapsed,
                steps=result.steps,
                rounds=result.rounds,
                triggers=result.triggers_considered,
            )
            if profiler is not None:
                self.last_profile = profiler.profile(total_time=elapsed)
        else:
            self._record("chase", calls=1)
        result, restricted = entry
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="chase",
                    mapping_digest=key[1],
                    instance_digest=key[2],
                    wall_time=elapsed,
                    cache_hit=hit,
                    rounds=result.rounds,
                    steps=result.steps,
                    facts=len(result.instance),
                    nulls=len(result.instance.nulls),
                    triggers=result.triggers_considered,
                    exhausted=_exhausted_tag(result.exhausted),
                ),
                metrics=(
                    {"profile": self.last_profile.to_summary()}
                    if self.last_profile is not None
                    else None
                ),
            )
        return ExchangeResult(
            instance=restricted,
            full=result.instance,
            generated=frozenset(result.generated),
            stats=OperationStats(
                elapsed,
                result.steps,
                result.rounds,
                triggers_considered=result.triggers_considered,
                delta_sizes=result.delta_sizes,
            ),
            provenance=CacheProvenance(self._key_id(key), hit),
            exhausted=result.exhausted,
        )

    def _sql_chase_result(
        self,
        mapping: SchemaMapping,
        source: Instance,
        tracer: Optional[Tracer],
        effective: Limits,
    ) -> ChaseResult:
        """Run the set-at-a-time SQL chase and adapt it to a ChaseResult.

        The working store is scratch state: a ``memory`` engine spec
        still chases inside an in-memory SQLite database (the compiler
        needs SQL), and path-based specs get a ``.chase`` scratch
        suffix recreated fresh per operation — the input instances may
        live at the spec path itself, and ``fresh=True`` drops tables.
        """
        from ..store.sqlplan import sql_chase

        spec = self.store_spec
        backend, _, path = spec.partition(":")
        if backend == "memory":
            backend = "sqlite"
        if path:
            store = open_store(f"{backend}:{path}.chase", fresh=True)
        else:
            store = open_store(backend)
        store.add_all(source.facts)
        sqlres = sql_chase(
            store,
            mapping.dependencies,
            tracer=tracer,
            limits=effective,
            jobs=self.sql_jobs,
        )
        full = sqlres.instance
        return ChaseResult(
            instance=full,
            generated=frozenset(full.facts - source.facts),
            steps=sqlres.steps,
            rounds=sqlres.rounds,
            exhausted=sqlres.exhausted,
            delta_sizes=sqlres.delta_sizes,
            triggers_considered=sqlres.triggers_considered,
        )

    def chase(
        self,
        mapping: SchemaMapping,
        source: Instance,
        variant: str = "restricted",
        limits: Optional[Limits] = None,
    ) -> Instance:
        """The target restriction of the chased instance (facade shape)."""
        return self.exchange(mapping, source, variant=variant, limits=limits).instance

    def chase_result(
        self,
        mapping: SchemaMapping,
        source: Instance,
        variant: str = "restricted",
        limits: Optional[Limits] = None,
    ) -> ChaseResult:
        """Deprecated alias shape: the legacy :class:`ChaseResult`."""
        return self.exchange(
            mapping, source, variant=variant, limits=limits
        ).to_chase_result()

    def _batch_policy(
        self,
        on_error: Optional[str],
        retries: Optional[int],
        faults: Optional[FaultPlan],
    ) -> Tuple[str, int, Optional[FaultPlan]]:
        """Resolve per-call batch knobs over the engine defaults."""
        policy = on_error if on_error is not None else self.on_error
        if policy not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {policy!r}"
            )
        budget = retries if retries is not None else self.retries
        plan = faults if faults is not None else current_fault_plan()
        return policy, budget, plan

    def _run_batch(
        self,
        payloads: Sequence[tuple],
        fn,
        workers: int,
        largest: int,
        retries: int,
        effective: Optional[Limits],
    ) -> List[ItemOutcome]:
        """Dispatch one batch of payloads to the right runner.

        **Supervised** (hard-kill) execution runs when the effective
        limits arm it — both ``grace`` and ``deadline`` set — and the
        host can spawn processes: each item gets its own watched worker
        process, and a worker whose heartbeat goes silent past the
        grace period is terminated and respawned
        (:mod:`repro.engine.supervisor`).  Supervision always uses
        processes, even for batches the size policy would keep on
        threads or the serial loop — threads cannot be killed.

        The supervised batch deadline is ``deadline + (1 + retries) *
        grace``: the extra grace periods are the supervisor's own
        escalation overhead (detecting the stall, terminating the
        worker, giving each permitted retry its turn), not time the
        items get to spend.  Without the headroom a kill — which by
        construction lands *after* the cooperative deadline — would
        always find the batch already stopped and the documented
        retry-with-remaining-deadline path could never run.

        Everything else goes through the cooperative
        :func:`make_executor` policy and
        :func:`run_batch_isolated`.
        """
        if (
            effective is not None
            and effective.grace is not None
            and effective.deadline is not None
            and supervision_available()
        ):
            return run_batch_supervised(
                payloads,
                fn,
                workers=max(1, workers),
                retries=retries,
                deadline=effective.deadline
                + (1 + retries) * effective.grace,
                grace=effective.grace,
            )
        executor = make_executor(
            workers, len(payloads), largest, self.process_threshold
        )
        return run_batch_isolated(
            payloads,
            fn,
            executor,
            retries=retries,
            deadline=effective.deadline if effective is not None else None,
        )

    def _note_kills(
        self, tracer: Optional[Tracer], op: str, outcome: ItemOutcome, index: int
    ) -> None:
        """Account one batch item's worker kills (stats + trace event)."""
        if not outcome.kills:
            return
        self._record(op, calls=0, kills=outcome.kills)
        if tracer is not None:
            context = current_context()
            tracer.emit(
                WorkerKilledEvent(
                    op=op,
                    batch_index=index,
                    kills=outcome.kills,
                    pid=getattr(outcome.error, "pid", None),
                    final=not outcome.ok,
                    trace_id=context.trace_id if context is not None else "",
                    request_id=context.request_id if context is not None else "",
                )
            )

    def chase_many(
        self,
        mapping: SchemaMapping,
        instances: Iterable[Instance],
        jobs: Optional[int] = None,
        variant: str = "restricted",
        limits: Optional[Limits] = None,
        on_error: Optional[str] = None,
        retries: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> List[object]:
        """Chase a batch of source instances, deduplicated and fanned out.

        Content-addressed dedup runs first — structurally identical
        instances (and anything already cached) are chased once — then
        the remaining unique work goes to a process pool, thread pool,
        or serial loop per the size policy.  Results come back in input
        order and are fact-for-fact identical to the serial path.

        Items are **fault isolated**: one item failing does not abandon
        the batch.  Under ``on_error="skip"`` each failed item resolves
        to a :class:`repro.errors.BatchItemError` in its input position
        (so the list mixes :class:`ExchangeResult` and error objects);
        under ``"raise"`` (the historical default) the remaining items
        still complete and cache, then the first failure propagates.
        Transient failures retry up to *retries* extra attempts.  A
        deadline in *limits* bounds the whole batch: unfinished items
        come back as deadline-exhausted errors, finished ones survive.
        *faults* (default: the ambient :func:`repro.limits.inject_faults`
        plan) injects deterministic failures by batch index for tests —
        deduplicated items take the fault of their first occurrence.
        """
        instances = list(instances)
        workers = jobs if jobs is not None else (self.jobs or 1)
        policy, retry_budget, plan = self._batch_policy(on_error, retries, faults)
        effective = resolve_limits(limits, self.limits)
        tracer = self._tracer()
        mapping_digest = mapping.digest()
        keys = [
            ("chase", mapping_digest, inst.digest(), variant) for inst in instances
        ]
        resolved: Dict[tuple, Tuple[tuple, bool]] = {}
        failed: Dict[tuple, ItemOutcome] = {}
        pending: Dict[tuple, Tuple[Instance, int]] = {}
        for index, (key, inst) in enumerate(zip(keys, instances)):
            if key in resolved or key in pending:
                continue
            hit, entry = self._caches["chase"].get(key)
            self._cache_event(tracer, "chase", key, hit)
            if hit:
                resolved[key] = (entry, True)
                self._record("chase", calls=1)
            else:
                pending[key] = (inst, index)
        if pending:
            todo = list(pending.items())
            context = current_context()
            ctx = context.to_dict() if context is not None else None
            payloads = [
                (
                    mapping,
                    inst,
                    variant,
                    ctx,
                    effective,
                    plan.for_item(first) if plan else None,
                    1,
                )
                for _, (inst, first) in todo
            ]
            fn = chase_task_traced if tracer is not None else chase_task
            start = self._clock()
            with maybe_span(
                tracer, "engine.chase_many", items=len(todo)
            ) as batch_span:
                outcomes = self._run_batch(
                    payloads,
                    fn,
                    workers,
                    max(len(inst) for inst, _ in pending.values()),
                    retry_budget,
                    effective,
                )
            elapsed = self._clock() - start
            for (key, (_inst, first)), outcome in zip(todo, outcomes):
                self._note_kills(tracer, "chase", outcome, first)
                if not outcome.ok:
                    failed[key] = outcome
                    self._record(
                        "chase",
                        calls=1,
                        errors=1,
                        error_wall_time=outcome.elapsed,
                    )
                    if self._telemetry:
                        self._emit(
                            OpRecord(
                                op="chase",
                                mapping_digest=key[1],
                                instance_digest=key[2],
                                wall_time=outcome.elapsed,
                                error=type(outcome.error).__name__,
                                exhausted=_exhausted_tag(
                                    getattr(outcome.error, "diagnosis", None)
                                ),
                                batch_index=first,
                                attempts=max(outcome.attempts, 1),
                                kills=outcome.kills,
                            )
                        )
                    continue
                if tracer is not None:
                    result, state = outcome.value
                    tracer.absorb(
                        state,
                        parent_id=(
                            batch_span.span_id if batch_span is not None else None
                        ),
                    )
                else:
                    result = outcome.value
                restricted = result.restricted_to(mapping.target.names)
                entry = (result, restricted)
                if result.exhausted is None:
                    self._caches["chase"].put(key, entry)
                resolved[key] = (entry, False)
                self._record(
                    "chase",
                    steps=result.steps,
                    rounds=result.rounds,
                    triggers=result.triggers_considered,
                    calls=1,
                )
                if self._telemetry:
                    self._emit(
                        OpRecord(
                            op="chase",
                            mapping_digest=key[1],
                            instance_digest=key[2],
                            wall_time=outcome.elapsed,
                            rounds=result.rounds,
                            steps=result.steps,
                            facts=len(result.instance),
                            nulls=len(result.instance.nulls),
                            triggers=result.triggers_considered,
                            exhausted=_exhausted_tag(result.exhausted),
                            batch_index=first,
                            attempts=outcome.attempts,
                            kills=outcome.kills,
                        )
                    )
            self._record("chase", wall_time=elapsed, calls=0)
            if failed and policy == "raise":
                for key in keys:
                    if key in failed:
                        raise failed[key].error
        out: List[object] = []
        for index, key in enumerate(keys):
            if key in failed:
                outcome = failed[key]
                out.append(
                    BatchItemError(
                        index=index,
                        op="chase",
                        error=outcome.error,
                        attempts=max(outcome.attempts, 1),
                        elapsed=outcome.elapsed,
                        kind="killed"
                        if isinstance(outcome.error, WorkerKilled)
                        else None,
                    )
                )
                continue
            (result, restricted), hit = resolved[key]
            out.append(
                ExchangeResult(
                    instance=restricted,
                    full=result.instance,
                    generated=frozenset(result.generated),
                    stats=OperationStats(
                        0.0,
                        result.steps,
                        result.rounds,
                        triggers_considered=result.triggers_considered,
                        delta_sizes=result.delta_sizes,
                    ),
                    provenance=CacheProvenance(self._key_id(key), hit),
                    exhausted=result.exhausted,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Reverse exchange
    # ------------------------------------------------------------------

    def _reverse_limits(
        self, max_branches: int, limits: Optional[Limits]
    ) -> Limits:
        """The disjunctive reverse chase's effective limits: the legacy
        guards (32 rounds/branch, *max_branches* worlds, raise) as the
        base, engine-level and per-call limits layered on top."""
        base = _LEGACY_REVERSE.replace(max_branches=max_branches)
        return base.merge(resolve_limits(limits, self.limits))

    def _reverse_branches(
        self,
        mapping: SchemaMapping,
        target: Instance,
        max_nulls: int,
        minimize: bool,
        max_branches: int,
        limits: Optional[Limits] = None,
    ) -> Tuple[bool, tuple, Tuple[Instance, ...], Optional[Exhausted]]:
        """The cached disjunctive-chase branch set of one target."""
        key = (
            "reverse",
            mapping.digest(),
            target.digest(),
            max_nulls,
            minimize,
            max_branches,
        )
        tracer = self._tracer()
        hit, candidates = self._caches["reverse"].get(key)
        self._cache_event(tracer, "reverse", key, hit)
        exhausted: Optional[Exhausted] = None
        elapsed = 0.0
        self.last_profile = None
        profiler = ChaseProfiler() if self.profile and not hit else None
        if not hit:
            start = self._clock()
            try:
                with maybe_span(tracer, "engine.reverse", key=self._key_id(key)):
                    branches = reverse_disjunctive_chase(
                        target,
                        mapping.dependencies,
                        result_relations=mapping.target.names,
                        max_nulls=max_nulls,
                        minimize=minimize,
                        limits=self._reverse_limits(max_branches, limits),
                        tracer=tracer,
                        profiler=profiler,
                    )
            except Exception as error:
                elapsed = self._clock() - start
                self._record(
                    "reverse", calls=1, errors=1, error_wall_time=elapsed
                )
                if self._telemetry:
                    self._emit(
                        OpRecord(
                            op="reverse",
                            mapping_digest=key[1],
                            instance_digest=key[2],
                            wall_time=elapsed,
                            error=type(error).__name__,
                            exhausted=_exhausted_tag(
                                getattr(error, "diagnosis", None)
                            ),
                        )
                    )
                raise
            candidates = tuple(branches)
            exhausted = branches.exhausted
            elapsed = self._clock() - start
            if exhausted is None:
                self._caches["reverse"].put(key, candidates)
            triggers = 0
            if profiler is not None:
                self.last_profile = profiler.profile(total_time=elapsed)
                triggers = self.last_profile.triggers_considered
            self._record(
                "reverse",
                wall_time=elapsed,
                branches=len(candidates),
                triggers=triggers,
            )
        else:
            self._record("reverse", calls=1)
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="reverse",
                    mapping_digest=key[1],
                    instance_digest=key[2],
                    wall_time=elapsed,
                    cache_hit=hit,
                    branches=len(candidates),
                    triggers=(
                        self.last_profile.triggers_considered
                        if self.last_profile is not None
                        else 0
                    ),
                    exhausted=_exhausted_tag(exhausted),
                ),
                metrics=(
                    {"profile": self.last_profile.to_summary()}
                    if self.last_profile is not None
                    else None
                ),
            )
        return hit, key, candidates, exhausted

    def reverse(
        self,
        reverse_mapping: SchemaMapping,
        target: Instance,
        max_nulls: int = 8,
        minimize: bool = True,
        max_branches: int = 10_000,
        take_core: bool = False,
        limits: Optional[Limits] = None,
    ) -> ReverseResult:
        """Materialize candidate source instances from a target instance.

        Plain-tgd reverse mappings use the (cached) standard chase — one
        candidate; disjunctive ones use the (cached) quotient-branching
        reverse chase.  With *take_core* every candidate is folded to
        its core through the core cache.  *limits* governs the run as in
        :meth:`exchange`; a truncated branch enumeration comes back
        tagged (``result.exhausted``) and uncached.
        """
        if reverse_mapping.is_disjunctive() or reverse_mapping.uses_inequality():
            hit, key, candidates, exhausted = self._reverse_branches(
                reverse_mapping, target, max_nulls, minimize, max_branches, limits
            )
        else:
            forward = self.exchange(reverse_mapping, target, limits=limits)
            hit, key, candidates, exhausted = (
                forward.cached,
                ("chase", reverse_mapping.digest(), target.digest(), "restricted"),
                (forward.instance,),
                forward.exhausted,
            )
        if not candidates:
            candidates = (Instance(),)
        if take_core:
            candidates = tuple(self.core(candidate) for candidate in candidates)
        return ReverseResult(
            candidates=candidates,
            canonical=candidates[0],
            stats=OperationStats(branches=len(candidates)),
            provenance=CacheProvenance(self._key_id(key), hit),
            exhausted=exhausted,
        )

    def reverse_chase(
        self,
        mapping: SchemaMapping,
        target: Instance,
        max_nulls: int = 8,
        minimize: bool = True,
        max_branches: int = 10_000,
        limits: Optional[Limits] = None,
    ) -> List[Instance]:
        """Deprecated alias shape returning the raw branch list.

        Exactly what ``SchemaMapping.reverse_chase`` returned: the
        disjunctive chase's candidates, no result wrapper."""
        _, _, candidates, _ = self._reverse_branches(
            mapping, target, max_nulls, minimize, max_branches, limits
        )
        return list(candidates)

    def reverse_many(
        self,
        reverse_mapping: SchemaMapping,
        targets: Iterable[Instance],
        jobs: Optional[int] = None,
        max_nulls: int = 8,
        minimize: bool = True,
        max_branches: int = 10_000,
        take_core: bool = False,
        limits: Optional[Limits] = None,
        on_error: Optional[str] = None,
        retries: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> List[object]:
        """Reverse a batch of target instances (dedup + fan-out).

        Plain-tgd reverse mappings route through :meth:`chase_many`, so
        the chase cache stays coherent with the serial path; disjunctive
        ones dedupe on the reverse cache and fan the quotient-branching
        chase out per unique target.  Fault isolation, retries, the
        batch deadline, and fault injection behave exactly as in
        :meth:`chase_many` (under ``on_error="skip"`` failed items
        resolve to :class:`repro.errors.BatchItemError`, ``op="reverse"``).
        """
        targets = list(targets)
        workers = jobs if jobs is not None else (self.jobs or 1)
        policy, retry_budget, plan = self._batch_policy(on_error, retries, faults)
        tracer = self._tracer()
        disjunctive = (
            reverse_mapping.is_disjunctive() or reverse_mapping.uses_inequality()
        )
        if not disjunctive:
            forward = self.chase_many(
                reverse_mapping,
                targets,
                jobs=workers,
                limits=limits,
                on_error=policy,
                retries=retry_budget,
                faults=plan,
            )
            results: List[object] = []
            for index, item in enumerate(forward):
                if isinstance(item, BatchItemError):
                    results.append(
                        BatchItemError(
                            index=index,
                            op="reverse",
                            error=item.error,
                            attempts=item.attempts,
                            diagnosis=item.diagnosis,
                            elapsed=item.elapsed,
                            kind=item.kind,
                        )
                    )
                    continue
                candidates: Tuple[Instance, ...] = (item.instance,)
                if take_core:
                    candidates = tuple(self.core(c) for c in candidates)
                results.append(
                    ReverseResult(
                        candidates=candidates,
                        canonical=candidates[0],
                        stats=OperationStats(branches=1),
                        provenance=item.provenance,
                        exhausted=item.exhausted,
                    )
                )
            return results
        task_limits = self._reverse_limits(max_branches, limits)
        mapping_digest = reverse_mapping.digest()
        keys = [
            ("reverse", mapping_digest, t.digest(), max_nulls, minimize, max_branches)
            for t in targets
        ]
        resolved: Dict[tuple, Tuple[Tuple[Instance, ...], bool, Optional[Exhausted]]] = {}
        failed: Dict[tuple, ItemOutcome] = {}
        pending: Dict[tuple, Tuple[Instance, int]] = {}
        for index, (key, target) in enumerate(zip(keys, targets)):
            if key in resolved or key in pending:
                continue
            hit, candidates = self._caches["reverse"].get(key)
            self._cache_event(tracer, "reverse", key, hit)
            if hit:
                resolved[key] = (candidates, True, None)
                self._record("reverse", calls=1)
            else:
                pending[key] = (target, index)
        if pending:
            todo = list(pending.items())
            context = current_context()
            ctx = context.to_dict() if context is not None else None
            payloads = [
                (
                    reverse_mapping,
                    t,
                    max_nulls,
                    minimize,
                    ctx,
                    task_limits,
                    plan.for_item(first) if plan else None,
                    1,
                )
                for _, (t, first) in todo
            ]
            fn = reverse_task_traced if tracer is not None else reverse_task
            start = self._clock()
            with maybe_span(
                tracer, "engine.reverse_many", items=len(todo)
            ) as batch_span:
                outcomes = self._run_batch(
                    payloads,
                    fn,
                    workers,
                    max(len(t) for t, _ in pending.values()),
                    retry_budget,
                    task_limits,
                )
            elapsed = self._clock() - start
            for (key, (_target, first)), outcome in zip(todo, outcomes):
                self._note_kills(tracer, "reverse", outcome, first)
                if not outcome.ok:
                    failed[key] = outcome
                    self._record(
                        "reverse",
                        calls=1,
                        errors=1,
                        error_wall_time=outcome.elapsed,
                    )
                    if self._telemetry:
                        self._emit(
                            OpRecord(
                                op="reverse",
                                mapping_digest=key[1],
                                instance_digest=key[2],
                                wall_time=outcome.elapsed,
                                error=type(outcome.error).__name__,
                                exhausted=_exhausted_tag(
                                    getattr(outcome.error, "diagnosis", None)
                                ),
                                batch_index=first,
                                attempts=max(outcome.attempts, 1),
                                kills=outcome.kills,
                            )
                        )
                    continue
                if tracer is not None:
                    branches, state = outcome.value
                    tracer.absorb(
                        state,
                        parent_id=(
                            batch_span.span_id if batch_span is not None else None
                        ),
                    )
                else:
                    branches = outcome.value
                candidates = tuple(branches)
                exhausted = getattr(branches, "exhausted", None)
                if exhausted is None:
                    self._caches["reverse"].put(key, candidates)
                resolved[key] = (candidates, False, exhausted)
                self._record("reverse", branches=len(candidates), calls=1)
                if self._telemetry:
                    self._emit(
                        OpRecord(
                            op="reverse",
                            mapping_digest=key[1],
                            instance_digest=key[2],
                            wall_time=outcome.elapsed,
                            branches=len(candidates),
                            exhausted=_exhausted_tag(exhausted),
                            batch_index=first,
                            attempts=outcome.attempts,
                            kills=outcome.kills,
                        )
                    )
            self._record("reverse", wall_time=elapsed, calls=0)
            if failed and policy == "raise":
                for key in keys:
                    if key in failed:
                        raise failed[key].error
        results = []
        for index, key in enumerate(keys):
            if key in failed:
                outcome = failed[key]
                results.append(
                    BatchItemError(
                        index=index,
                        op="reverse",
                        error=outcome.error,
                        attempts=max(outcome.attempts, 1),
                        elapsed=outcome.elapsed,
                        kind="killed"
                        if isinstance(outcome.error, WorkerKilled)
                        else None,
                    )
                )
                continue
            candidates, hit, exhausted = resolved[key]
            if not candidates:
                candidates = (Instance(),)
            if take_core:
                candidates = tuple(self.core(c) for c in candidates)
            results.append(
                ReverseResult(
                    candidates=candidates,
                    canonical=candidates[0],
                    stats=OperationStats(branches=len(candidates)),
                    provenance=CacheProvenance(self._key_id(key), hit),
                    exhausted=exhausted,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Homomorphisms and cores
    # ------------------------------------------------------------------

    def is_homomorphic(self, left: Instance, right: Instance) -> bool:
        """Cached homomorphism-existence verdict ``left → right``."""
        key = (left.digest(), right.digest())
        tracer = self._tracer()
        hit, verdict = self._caches["hom"].get(key)
        self._cache_event(tracer, "hom", key, hit)
        elapsed = 0.0
        if not hit:
            from ..homs.search import is_homomorphic

            start = self._clock()
            with maybe_span(tracer, "engine.hom"):
                verdict = is_homomorphic(left, right)
            elapsed = self._clock() - start
            self._caches["hom"].put(key, verdict)
            self._record("hom", wall_time=elapsed)
        else:
            self._record("hom", calls=1)
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="hom",
                    instance_digest=key[0],
                    wall_time=elapsed,
                    cache_hit=hit,
                )
            )
        return verdict

    def is_hom_equivalent(self, left: Instance, right: Instance) -> bool:
        """Cached homomorphic equivalence (both directions)."""
        return self.is_homomorphic(left, right) and self.is_homomorphic(right, left)

    def core(self, instance: Instance) -> Instance:
        """The cached core of *instance*."""
        key = (instance.digest(),)
        tracer = self._tracer()
        hit, folded = self._caches["core"].get(key)
        self._cache_event(tracer, "core", key, hit)
        elapsed = 0.0
        if not hit:
            from ..homs.core import core

            start = self._clock()
            with maybe_span(tracer, "engine.core"):
                folded = core(instance)
            elapsed = self._clock() - start
            self._caches["core"].put(key, folded)
            self._record("core", wall_time=elapsed)
        else:
            self._record("core", calls=1)
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="core",
                    instance_digest=key[0],
                    wall_time=elapsed,
                    cache_hit=hit,
                    facts=len(folded),
                    nulls=len(folded.nulls),
                )
            )
        return folded

    # ------------------------------------------------------------------
    # Audits and reverse query answering
    # ------------------------------------------------------------------

    def audit(
        self, mapping: SchemaMapping, reverse: Optional[SchemaMapping] = None
    ) -> AuditReport:
        """Invertibility audit of a mapping, cached by mapping digest.

        Checks ground invertibility, extended invertibility, and (when
        a candidate is given) the chase-inverse property."""
        key = (
            "audit",
            mapping.digest(),
            reverse.digest() if reverse is not None else "",
        )
        tracer = self._tracer()
        hit, entry = self._caches["audit"].get(key)
        self._cache_event(tracer, "audit", key, hit)
        elapsed = 0.0
        if not hit:
            from ..inverses.extended_inverse import (
                is_chase_inverse,
                is_extended_invertible,
            )
            from ..inverses.ground import is_invertible

            start = self._clock()
            with maybe_span(tracer, "engine.audit"):
                entry = (
                    is_invertible(mapping),
                    is_extended_invertible(mapping),
                    is_chase_inverse(mapping, reverse)
                    if reverse is not None
                    else None,
                )
            elapsed = self._clock() - start
            self._caches["audit"].put(key, entry)
            self._record("audit", wall_time=elapsed)
        else:
            self._record("audit", calls=1)
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="audit",
                    mapping_digest=key[1],
                    wall_time=elapsed,
                    cache_hit=hit,
                )
            )
        invertible, extended, chase_inverse = entry
        return AuditReport(
            invertible=invertible,
            extended_invertible=extended,
            chase_inverse=chase_inverse,
            provenance=CacheProvenance(self._key_id(key), hit),
        )

    def answer(
        self,
        mapping: SchemaMapping,
        recovery: SchemaMapping,
        query,
        source: Instance,
        max_nulls: int = 8,
    ) -> FrozenSet[Tuple]:
        """Reverse certain answers (Theorem 6.5) through the caches.

        The forward chase and the reverse branch set both come from the
        engine's caches, so repeated queries over the same exchange pay
        only the final intersection; the answer set itself is cached on
        top of that.
        """
        key = (
            "answer",
            mapping.digest(),
            recovery.digest(),
            str(query),
            source.digest(),
            max_nulls,
        )
        tracer = self._tracer()
        hit, answers = self._caches["answer"].get(key)
        self._cache_event(tracer, "answer", key, hit)
        elapsed = 0.0
        if not hit:
            from ..logic.queries import certain_answers_over_set

            start = self._clock()
            with maybe_span(tracer, "engine.answer"):
                target = self.chase(mapping, source)
                branches = self.reverse(
                    recovery, target, max_nulls=max_nulls
                ).candidates
                answers = certain_answers_over_set(query, branches)
            elapsed = self._clock() - start
            self._caches["answer"].put(key, answers)
            self._record("answer", wall_time=elapsed)
        else:
            self._record("answer", calls=1)
        if self._telemetry:
            self._emit(
                OpRecord(
                    op="answer",
                    mapping_digest=key[1],
                    instance_digest=key[4],
                    wall_time=elapsed,
                    cache_hit=hit,
                )
            )
        return answers

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-operation counters as a nested plain dict.

        Covers cache hits/misses/evictions, live entries, compute wall
        time, and chase work (steps, rounds, triggers, branches), plus
        a ``totals`` roll-up.

        When a tracer is attached (or ambient), its metrics registry is
        merged in under the ``"tracer"`` key — event counts by kind and
        span duration histograms alongside the cache counters."""
        report: Dict[str, Dict[str, float]] = {}
        totals = {
            "calls": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "wall_time": 0.0,
            "steps": 0,
            "rounds": 0,
            "triggers": 0,
            "branches": 0,
            "errors": 0,
            "error_wall_time": 0.0,
            "kills": 0,
        }
        for op in _OPS:
            cache = self._caches[op]
            counters = self._ops[op]
            row = {
                "calls": counters.calls,
                **cache.stats.as_dict(),
                "entries": len(cache),
                "wall_time": round(counters.wall_time, 6),
                "steps": counters.steps,
                "rounds": counters.rounds,
                "triggers": counters.triggers,
                "branches": counters.branches,
                "errors": counters.errors,
                "error_wall_time": round(counters.error_wall_time, 6),
                "kills": counters.kills,
            }
            report[op] = row
            totals["calls"] += counters.calls
            totals["hits"] += cache.stats.hits
            totals["misses"] += cache.stats.misses
            totals["evictions"] += cache.stats.evictions
            totals["wall_time"] = round(totals["wall_time"] + counters.wall_time, 6)
            totals["steps"] += counters.steps
            totals["rounds"] += counters.rounds
            totals["triggers"] += counters.triggers
            totals["branches"] += counters.branches
            totals["errors"] += counters.errors
            totals["error_wall_time"] = round(
                totals["error_wall_time"] + counters.error_wall_time, 6
            )
            totals["kills"] += counters.kills
        report["totals"] = totals
        tracer = self._tracer()
        if tracer is not None:
            report["tracer"] = tracer.metrics.as_dict()
        return report

    @staticmethod
    def _hit_rate(hits: float, calls: float) -> str:
        """Hit percentage as text; ``-`` for ops never called (no 0/0)."""
        if calls <= 0:
            return "-"
        return f"{100.0 * hits / calls:.0f}%"

    @staticmethod
    def _ms_per_call(wall_time: float, misses: float) -> str:
        """Mean compute ms per miss; ``-`` when nothing was computed."""
        if misses <= 0:
            return "-"
        return f"{1000.0 * wall_time / misses:.2f}"

    def render_stats(self) -> str:
        """The stats table as printable text (the CLI's ``--stats``).

        Derived columns (hit rate, mean compute ms per miss) render as
        ``-`` for operations with zero recorded calls rather than
        dividing by zero, and the totals row carries every column so
        the table stays aligned whatever subset of ops actually ran.
        """
        report = self.stats()
        lines = ["engine stats:"]
        header = (
            f"  {'op':<8} {'calls':>6} {'hits':>6} {'misses':>7} {'hit%':>6} "
            f"{'evict':>6} {'entries':>8} {'wall(s)':>10} {'ms/call':>8} "
            f"{'steps':>7} {'triggers':>9} {'branches':>9} {'errors':>7} "
            f"{'kills':>6}"
        )
        lines.append(header)
        for op in (*_OPS, "totals"):
            row = report[op]
            label = "total" if op == "totals" else op
            entries = "" if op == "totals" else f"{row['entries']:>8}"
            lines.append(
                f"  {label:<8} {row['calls']:>6} {row['hits']:>6} "
                f"{row['misses']:>7} "
                f"{self._hit_rate(row['hits'], row['calls']):>6} "
                f"{row['evictions']:>6} {entries:>8} {row['wall_time']:>10.4f} "
                f"{self._ms_per_call(row['wall_time'], row['misses']):>8} "
                f"{row['steps']:>7} {row['triggers']:>9} {row['branches']:>9} "
                f"{row['errors']:>7} {row['kills']:>6}"
            )
        tracer_metrics = report.get("tracer")
        if tracer_metrics and (
            tracer_metrics["counters"] or tracer_metrics["histograms"]
        ):
            lines.append("  tracer:")
            for name, value in tracer_metrics["counters"].items():
                lines.append(f"    {name:<30} {value}")
            for name, hist in tracer_metrics["histograms"].items():
                lines.append(
                    f"    {name:<30} n={hist['count']} "
                    f"mean={hist['mean'] * 1000:.3f}ms"
                )
        return "\n".join(lines)

    def clear(self) -> None:
        """Empty every cache (lifetime counters are kept)."""
        for cache in self._caches.values():
            cache.clear()
