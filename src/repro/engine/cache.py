"""Size-bounded LRU caches with hit/miss/eviction accounting.

The engine keeps one cache per operation family (chase results,
disjunctive branch sets, homomorphism verdicts, cores, ...), each keyed
by content digests, so the caches survive any amount of object churn:
two structurally identical instances built independently share entries.

A cache of ``maxsize`` 0 is a valid always-miss cache — that is how
``--no-cache`` is implemented, keeping the engine code branch-free.

:class:`TieredCache` layers an LRU over a persistent backing cache
(duck-typed; in practice :class:`repro.service.DiskCache`): reads fall
through memory to the backing tier and promote on hit, writes go to
both.  It mimics the ``LRUCache`` surface exactly, so the engine's
call sites stay tier-agnostic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple


@dataclass
class CacheStats:
    """Counters for one cache: lifetime hits, misses, and evictions."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A thread-safe least-recently-used cache over hashable keys."""

    def __init__(self, maxsize: int = 256) -> None:
        """An empty cache holding at most *maxsize* entries (0 disables)."""
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Look up *key*; returns ``(hit, value)`` and counts the lookup."""
        with self._lock:
            if self.maxsize and key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                return True, self._data[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert *key*, evicting least-recently-used entries past capacity."""
        if not self.maxsize:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop every entry; lifetime counters are kept."""
        with self._lock:
            self._data.clear()


class TieredCache:
    """An LRU front over a persistent backing cache (usually on disk).

    The backing tier is duck-typed: anything with ``get(key) ->
    (hit, value)`` and ``put(key, value)`` works —
    :class:`repro.service.DiskCache` in production, a plain dict-backed
    stub in tests.  Backing keys are namespaced with the operation name
    so one backing store can serve every per-op cache (and the ``hom``/
    ``core`` key tuples, which carry no op tag of their own, cannot
    collide with tagged ones).

    ``stats`` counts the *combined* outcome: a hit in either tier is a
    hit (``backing_hits`` tracks the subset served from the backing
    tier); only a miss in both is a miss.  ``clear()`` empties the
    memory tier only — persistence across clears/restarts is the
    backing tier's whole purpose; bound it with its own ``gc``.
    """

    def __init__(self, memory: LRUCache, backing: Any, namespace: str) -> None:
        """Layer *memory* over *backing*, tagging keys with *namespace*."""
        self.memory = memory
        self.backing = backing
        self.namespace = namespace
        self._stats = CacheStats()
        self.backing_hits = 0

    @property
    def stats(self) -> CacheStats:
        """Combined counters; evictions are the memory tier's."""
        return CacheStats(
            hits=self._stats.hits,
            misses=self._stats.misses,
            evictions=self.memory.stats.evictions,
        )

    def _backing_key(self, key: Hashable) -> tuple:
        return (self.namespace,) + (key if isinstance(key, tuple) else (key,))

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Memory first, then the backing tier (promoting on hit)."""
        hit, value = self.memory.get(key)
        if hit:
            self._stats.hits += 1
            return True, value
        hit, value = self.backing.get(self._backing_key(key))
        if hit:
            self.memory.put(key, value)
            self._stats.hits += 1
            self.backing_hits += 1
            return True, value
        self._stats.misses += 1
        return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Write through: the entry lands in both tiers."""
        self.memory.put(key, value)
        self.backing.put(self._backing_key(key), value)

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.memory

    @property
    def maxsize(self) -> int:
        """The memory tier's capacity (the backing tier is unbounded)."""
        return self.memory.maxsize

    def clear(self) -> None:
        """Empty the memory tier; the backing tier persists by design."""
        self.memory.clear()
