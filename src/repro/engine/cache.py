"""Size-bounded LRU caches with hit/miss/eviction accounting.

The engine keeps one cache per operation family (chase results,
disjunctive branch sets, homomorphism verdicts, cores, ...), each keyed
by content digests, so the caches survive any amount of object churn:
two structurally identical instances built independently share entries.

A cache of ``maxsize`` 0 is a valid always-miss cache — that is how
``--no-cache`` is implemented, keeping the engine code branch-free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple


@dataclass
class CacheStats:
    """Counters for one cache: lifetime hits, misses, and evictions."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A thread-safe least-recently-used cache over hashable keys."""

    def __init__(self, maxsize: int = 256) -> None:
        """An empty cache holding at most *maxsize* entries (0 disables)."""
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Look up *key*; returns ``(hit, value)`` and counts the lookup."""
        with self._lock:
            if self.maxsize and key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                return True, self._data[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert *key*, evicting least-recently-used entries past capacity."""
        if not self.maxsize:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop every entry; lifetime counters are kept."""
        with self._lock:
            self._data.clear()
