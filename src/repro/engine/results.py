"""Typed result objects for the engine's public API.

Historically the exchange entry points returned three different shapes:
``SchemaMapping.chase`` a bare :class:`~repro.instance.Instance`,
``chase_result`` a :class:`~repro.chase.standard.ChaseResult`, and
``reverse_chase`` a ``List[Instance]``.  The engine normalizes them:

* :class:`ExchangeResult` — forward exchange: the target restriction,
  the full chased instance, chase work counters, and cache provenance;
* :class:`ReverseResult` — reverse exchange: the candidate source
  instances (one for tgd reverses, a branch set for disjunctive ones),
  plus the same stats/provenance envelope.

The old entry points survive as thin deprecated aliases that unwrap
these objects, so no call site breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..chase.standard import ChaseResult
from ..instance import Instance
from ..inverses.verdicts import CheckVerdict
from ..limits import Exhausted


@dataclass(frozen=True)
class OperationStats:
    """Work done to produce one result.

    ``wall_time`` is the compute time in seconds (near zero on a cache
    hit); ``steps``/``rounds`` are chase trigger firings and fixpoint
    rounds (0 where not applicable); ``branches`` is the disjunctive
    branch count explored on reverse operations.

    ``triggers_considered``/``delta_sizes`` carry the semi-naive
    chase's per-round statistics through the engine (see
    :class:`~repro.chase.standard.ChaseResult`): how many premise
    bindings the loop enumerated, and how many facts were new going
    into each round.  Cache hits replay the counters recorded when the
    entry was computed (as with ``steps``/``rounds``); both are
    zero/empty for operations without a standard-chase phase.
    """

    wall_time: float = 0.0
    steps: int = 0
    rounds: int = 0
    branches: int = 0
    triggers_considered: int = 0
    delta_sizes: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CacheProvenance:
    """Where a result came from, as key plus hit flag.

    ``key`` is the content-addressed cache key; ``hit`` is True when
    the engine served the result from cache rather than computing."""

    key: str = ""
    hit: bool = False


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of a forward exchange ``chase_M(I)``.

    ``instance`` is the target-schema restriction (what ``chase``
    returned historically); ``full`` the whole chased instance (source
    facts included, what ``chase_result().instance`` returned).

    ``exhausted`` is ``None`` for a completed chase; on a budget-limited
    run it carries the :class:`repro.limits.Exhausted` diagnosis and the
    instances are sound partial results (never served from or stored in
    the cache).
    """

    instance: Instance
    full: Instance
    generated: frozenset = frozenset()
    stats: OperationStats = field(default_factory=OperationStats)
    provenance: CacheProvenance = field(default_factory=CacheProvenance)
    exhausted: Optional[Exhausted] = None

    @property
    def cached(self) -> bool:
        """True when this result was served from the engine cache."""
        return self.provenance.hit

    @property
    def completed(self) -> bool:
        """True when the chase reached its fixpoint within budget."""
        return self.exhausted is None

    @property
    def steps(self) -> int:
        """Chase steps performed to produce the result."""
        return self.stats.steps

    @property
    def rounds(self) -> int:
        """Chase rounds performed to produce the result."""
        return self.stats.rounds

    def to_chase_result(self) -> ChaseResult:
        """The legacy :class:`ChaseResult` shape (deprecated callers)."""
        return ChaseResult(
            instance=self.full,
            generated=self.generated,
            steps=self.stats.steps,
            rounds=self.stats.rounds,
            exhausted=self.exhausted,
            delta_sizes=self.stats.delta_sizes,
            triggers_considered=self.stats.triggers_considered,
        )


@dataclass(frozen=True)
class ReverseResult:
    """Outcome of a reverse exchange.

    ``candidates`` holds the recovered source instances (a single
    element for tgd reverse mappings, a hom-minimal antichain for
    disjunctive maximum extended recoveries).  ``canonical`` is the
    first candidate — a compact representative for reporting.
    """

    candidates: Tuple[Instance, ...]
    canonical: Instance
    stats: OperationStats = field(default_factory=OperationStats)
    provenance: CacheProvenance = field(default_factory=CacheProvenance)
    exhausted: Optional[Exhausted] = None

    @property
    def cached(self) -> bool:
        """True when this result was served from the engine cache."""
        return self.provenance.hit

    @property
    def completed(self) -> bool:
        """True when the branch enumeration finished within budget."""
        return self.exhausted is None

    @property
    def instances(self) -> Tuple[Instance, ...]:
        """Alias of ``candidates`` (the normalized plural accessor)."""
        return self.candidates

    @property
    def unique(self) -> Instance:
        """The single candidate; raises when the result branched."""
        if len(self.candidates) != 1:
            raise ValueError(
                f"reverse exchange produced {len(self.candidates)} candidates; "
                "use .candidates for disjunctive recoveries"
            )
        return self.candidates[0]


@dataclass(frozen=True)
class AuditReport:
    """Invertibility audit of one mapping, from :meth:`ExchangeEngine.audit`.

    Optionally covers a candidate reverse mapping's chase-inverse
    check alongside the two invertibility verdicts."""

    invertible: CheckVerdict
    extended_invertible: CheckVerdict
    chase_inverse: Optional[CheckVerdict] = None
    provenance: CacheProvenance = field(default_factory=CacheProvenance)

    @property
    def cached(self) -> bool:
        """True when this result was served from the engine cache."""
        return self.provenance.hit
