"""Whole-mapping analysis reports."""

from .report import MappingReport, analyze_mapping

__all__ = ["MappingReport", "analyze_mapping"]
