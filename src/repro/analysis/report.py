"""One-stop analysis of a schema mapping.

Bundles the paper's toolbox into a single structured report: language
classification, classical and extended invertibility (with verified
counterexamples), a computed maximum extended recovery when the
quasi-inverse algorithm applies, sampled information loss, and a
round-trip demonstration on a probe instance.  This is what the CLI's
``report`` command prints and what a mapping-design tool would surface
to its user (the Section 6.3 use case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..instance import Instance
from ..inverses.extended_inverse import (
    canonical_source_instances,
    is_extended_invertible,
)
from ..inverses.ground import is_invertible
from ..inverses.information_loss import LossReport, sample_information_loss
from ..inverses.quasi_inverse import (
    NotFullTgds,
    maximum_extended_recovery_for_full_tgds,
)
from ..inverses.verdicts import CheckVerdict
from ..mappings.schema_mapping import SchemaMapping
from ..reverse.exchange import recovery_quality
from ..workloads.generators import ground_pairs


@dataclass(frozen=True)
class MappingReport:
    """A structured analysis of one schema mapping."""

    mapping: SchemaMapping
    language: str
    invertible: CheckVerdict
    extended_invertible: CheckVerdict
    recovery: Optional[SchemaMapping]
    recovery_note: str
    loss: Optional[LossReport]
    probe: Optional[Instance]
    probe_hom_equivalent: Optional[bool]
    probe_branches: Optional[int]

    def render(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines: List[str] = []
        lines.append(f"language:              {self.language}")
        lines.append(f"invertible (ground):   {self.invertible.holds}")
        lines.append(f"extended invertible:   {self.extended_invertible.holds}")
        if not self.extended_invertible.holds:
            lines.append(f"  counterexample:      {self.extended_invertible.counterexample}")
        if self.recovery is not None:
            role = "maximum extended recovery"
            if self.extended_invertible.holds and not self.recovery.is_disjunctive():
                role += " — an extended inverse (Prop 4.16)"
            lines.append(f"{role} (quasi-inverse algorithm):")
            for dep in self.recovery.dependencies:
                lines.append(f"  {dep}")
        else:
            lines.append(f"maximum extended recovery: {self.recovery_note}")
        if self.loss is not None:
            lines.append(
                "sampled information loss: "
                f"{self.loss.lost}/{self.loss.pairs_tested} pairs "
                f"(rate {self.loss.loss_rate:.2f})"
            )
        if self.probe is not None:
            lines.append(f"round-trip probe:      {self.probe}")
            lines.append(f"  recovered up to hom-equivalence: {self.probe_hom_equivalent}")
            lines.append(f"  reverse branches:                {self.probe_branches}")
        return "\n".join(lines)


def _classify(mapping: SchemaMapping) -> str:
    parts = []
    if mapping.is_plain_tgds():
        parts.append("full s-t tgds" if mapping.is_full() else "s-t tgds")
    else:
        if mapping.is_disjunctive():
            parts.append("disjunctive tgds")
        else:
            parts.append("guarded tgds")
        if mapping.uses_inequality():
            parts.append("with inequalities")
        if mapping.uses_constant_guard():
            parts.append("with Constant")
    return " ".join(parts)


def analyze_mapping(
    mapping: SchemaMapping,
    loss_sample_pairs: int = 40,
    probe: Optional[Instance] = None,
    seed: int = 17,
) -> MappingReport:
    """Run the full analysis battery on *mapping*.

    The mapping must be specified by plain tgds (the class the paper's
    positive results cover).  The information-loss sample and the
    round-trip probe are only produced when a recovery is computable
    (full tgds); the invertibility verdicts always are.
    """
    if not mapping.is_plain_tgds():
        raise ValueError("analyze_mapping expects a plain-tgd mapping")

    invertible = is_invertible(mapping)
    extended = is_extended_invertible(mapping)

    recovery: Optional[SchemaMapping] = None
    recovery_note = ""
    try:
        recovery = maximum_extended_recovery_for_full_tgds(mapping)
    except NotFullTgds as exc:
        recovery_note = (
            f"not computed ({exc}); the canonical M* = {{(chase_M(I), I)}} "
            "exists semantically (Theorem 4.10)"
        )

    loss: Optional[LossReport] = None
    try:
        pairs = ground_pairs(
            mapping.source, loss_sample_pairs, size=3, seed=seed, value_pool=3
        )
        loss = sample_information_loss(mapping, pairs)
    except ValueError:
        loss = None

    probe_instance = probe
    if probe_instance is None:
        ground_probes = [
            inst
            for inst in canonical_source_instances(mapping)
            if inst.is_ground() and not inst.is_empty()
        ]
        probe_instance = ground_probes[0] if ground_probes else None

    probe_hom_equivalent: Optional[bool] = None
    probe_branches: Optional[int] = None
    if recovery is not None and probe_instance is not None:
        quality = recovery_quality(mapping, recovery, probe_instance)
        probe_hom_equivalent = quality.hom_equivalent
        probe_branches = quality.candidates

    return MappingReport(
        mapping=mapping,
        language=_classify(mapping),
        invertible=invertible,
        extended_invertible=extended,
        recovery=recovery,
        recovery_note=recovery_note,
        loss=loss,
        probe=probe_instance,
        probe_hom_equivalent=probe_hom_equivalent,
        probe_branches=probe_branches,
    )
