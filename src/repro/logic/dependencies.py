"""Tuple-generating dependencies, plain and disjunctive.

The dependency languages of Section 2 of the paper, in increasing
generality:

* **s-t tgds** ``∀x (ϕ(x) → ∃y ψ(x, y))`` — :class:`Tgd` with no guards;
* **full s-t tgds** — tgds with no existential variables;
* **tgds with constants** — premises may use ``Constant(x)`` guards;
* **tgds with inequalities** — premises may use ``x ≠ x'`` guards;
* **disjunctive tgds (with constants and inequalities)**
  ``∀x (ϕ(x) → ⋁ᵢ ∃yᵢ ψᵢ(x, yᵢ))`` — :class:`DisjunctiveTgd`.

Both classes validate *safety*: every universally quantified variable
(i.e., every premise or guard variable, and every non-existential
conclusion variable) must occur in a relational premise atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Mapping, Sequence, Tuple, Union

from ..terms import Term, Var
from .atoms import Atom
from .guards import ConstantGuard, Guard, Inequality


def _atom_variables(atoms: Sequence[Atom]) -> FrozenSet[Var]:
    out = set()
    for a in atoms:
        out.update(a.variables())
    return frozenset(out)


def _guard_variables(guards: Sequence[Guard]) -> FrozenSet[Var]:
    out = set()
    for g in guards:
        if isinstance(g, Inequality):
            for t in (g.left, g.right):
                if isinstance(t, Var):
                    out.add(t)
        elif isinstance(g, ConstantGuard):
            if isinstance(g.term, Var):
                out.add(g.term)
    return frozenset(out)


def _check_safety(premise: Sequence[Atom], guards: Sequence[Guard], label: str) -> None:
    premise_vars = _atom_variables(premise)
    loose = _guard_variables(guards) - premise_vars
    if loose:
        names = ", ".join(sorted(v.name for v in loose))
        raise ValueError(f"{label}: guard variables {{{names}}} missing from premise atoms")


@dataclass(frozen=True)
class Tgd:
    """A tuple-generating dependency ``ϕ(x) ∧ guards → ∃y ψ(x, y)``.

    ``premise`` atoms are over the source-side schema and ``conclusion``
    atoms over the target side (for target-to-source dependencies the roles
    swap; the class itself is direction-agnostic).  Conclusion variables
    absent from the premise are existentially quantified.
    """

    premise: Tuple[Atom, ...]
    conclusion: Tuple[Atom, ...]
    guards: Tuple[Guard, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.conclusion:
            raise ValueError("tgd needs at least one conclusion atom")
        if not self.premise:
            raise ValueError("tgd needs at least one premise atom (safety)")
        _check_safety(self.premise, self.guards, f"tgd {self}")

    # -- classification -------------------------------------------------

    @property
    def premise_variables(self) -> FrozenSet[Var]:
        """All variables occurring in the premise (the ``x``)."""
        return _atom_variables(self.premise)

    @property
    def conclusion_variables(self) -> FrozenSet[Var]:
        """All variables occurring in the conclusion."""
        return _atom_variables(self.conclusion)

    @property
    def existential_variables(self) -> FrozenSet[Var]:
        """Conclusion variables not bound by the premise (the ``∃y``)."""
        return self.conclusion_variables - self.premise_variables

    @property
    def frontier(self) -> FrozenSet[Var]:
        """Variables shared between premise and conclusion."""
        return self.conclusion_variables & self.premise_variables

    def is_full(self) -> bool:
        """True for full tgds (no existential quantifiers)."""
        return not self.existential_variables

    def uses_constant_guard(self) -> bool:
        """True when any guard is a constant-membership test ``C(x)``."""
        return any(isinstance(g, ConstantGuard) for g in self.guards)

    def uses_inequality(self) -> bool:
        """True when any guard is an inequality ``x != y``."""
        return any(isinstance(g, Inequality) for g in self.guards)

    def is_plain(self) -> bool:
        """True for guard-free tgds — the paper's plain (s-t) tgds."""
        return not self.guards

    # -- structure ------------------------------------------------------

    def premise_relations(self) -> FrozenSet[str]:
        """Relation names mentioned on the premise side."""
        return frozenset(a.relation for a in self.premise)

    def conclusion_relations(self) -> FrozenSet[str]:
        """Relation names mentioned on the conclusion side."""
        return frozenset(a.relation for a in self.conclusion)

    def substitute_terms(self, mapping: Mapping[Var, Term]) -> "Tgd":
        """Apply a variable→term substitution to both sides and guards.

        Used to instantiate equality types in the quasi-inverse algorithm.
        Substituting may make an inequality trivially false; callers decide
        whether such a dependency is kept (it is vacuous) or dropped.
        """
        return Tgd(
            tuple(a.substitute_terms(mapping) for a in self.premise),
            tuple(a.substitute_terms(mapping) for a in self.conclusion),
            tuple(g.substitute_terms(mapping) for g in self.guards),
        )

    def to_disjunctive(self) -> "DisjunctiveTgd":
        """This tgd as a one-disjunct disjunctive tgd."""
        return DisjunctiveTgd(self.premise, (self.conclusion,), self.guards)

    def __str__(self) -> str:
        left = " & ".join(str(a) for a in self.premise)
        if self.guards:
            left += " & " + " & ".join(str(g) for g in self.guards)
        exis = sorted(self.existential_variables)
        right = " & ".join(str(a) for a in self.conclusion)
        if exis:
            names = ", ".join(v.name for v in exis)
            right = f"EXISTS {names} . {right}"
        return f"{left} -> {right}"

    def __repr__(self) -> str:
        return f"Tgd({self})"


@dataclass(frozen=True)
class DisjunctiveTgd:
    """A disjunctive tgd ``ϕ(x) ∧ guards → ⋁ᵢ ∃yᵢ ψᵢ(x, yᵢ)``.

    Each disjunct is a conjunction of atoms with its own existential
    variables.  A disjunctive tgd with one disjunct is semantically a plain
    tgd; :meth:`as_tgd` converts back in that case.
    """

    premise: Tuple[Atom, ...]
    disjuncts: Tuple[Tuple[Atom, ...], ...]
    guards: Tuple[Guard, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError(
                "disjunctive tgd needs at least one disjunct (an empty "
                "disjunction is a denial constraint, which the paper's "
                "language does not include)"
            )
        if any(not d for d in self.disjuncts):
            raise ValueError("every disjunct needs at least one atom")
        if not self.premise:
            raise ValueError("disjunctive tgd needs at least one premise atom")
        _check_safety(self.premise, self.guards, f"disjunctive tgd {self}")

    @property
    def premise_variables(self) -> FrozenSet[Var]:
        """All variables occurring in the premise (the ``x``)."""
        return _atom_variables(self.premise)

    def existential_variables(self, disjunct_index: int) -> FrozenSet[Var]:
        """Existential variables of one disjunct."""
        return _atom_variables(self.disjuncts[disjunct_index]) - self.premise_variables

    def is_full(self) -> bool:
        """True when no disjunct quantifies existentially."""
        return all(not self.existential_variables(i) for i in range(len(self.disjuncts)))

    def uses_constant_guard(self) -> bool:
        """True when any guard is a constant-membership test ``C(x)``."""
        return any(isinstance(g, ConstantGuard) for g in self.guards)

    def uses_inequality(self) -> bool:
        """True when any guard is an inequality ``x != y``."""
        return any(isinstance(g, Inequality) for g in self.guards)

    def is_disjunctive(self) -> bool:
        """True when there are two or more disjuncts."""
        return len(self.disjuncts) > 1

    def premise_relations(self) -> FrozenSet[str]:
        """Relation names mentioned on the premise side."""
        return frozenset(a.relation for a in self.premise)

    def conclusion_relations(self) -> FrozenSet[str]:
        """Relation names mentioned across all disjuncts."""
        return frozenset(a.relation for d in self.disjuncts for a in d)

    def as_tgd(self) -> Tgd:
        """Convert a one-disjunct disjunctive tgd back to a plain tgd."""
        if len(self.disjuncts) != 1:
            raise ValueError(f"{self} has {len(self.disjuncts)} disjuncts, not 1")
        return Tgd(self.premise, self.disjuncts[0], self.guards)

    def substitute_terms(self, mapping: Mapping[Var, Term]) -> "DisjunctiveTgd":
        """Apply a variable-to-term substitution everywhere (guards too)."""
        return DisjunctiveTgd(
            tuple(a.substitute_terms(mapping) for a in self.premise),
            tuple(
                tuple(a.substitute_terms(mapping) for a in d) for d in self.disjuncts
            ),
            tuple(g.substitute_terms(mapping) for g in self.guards),
        )

    def __str__(self) -> str:
        left = " & ".join(str(a) for a in self.premise)
        if self.guards:
            left += " & " + " & ".join(str(g) for g in self.guards)
        parts = []
        for i, d in enumerate(self.disjuncts):
            body = " & ".join(str(a) for a in d)
            exis = sorted(self.existential_variables(i))
            if exis:
                names = ", ".join(v.name for v in exis)
                body = f"EXISTS {names} . {body}"
            if len(d) > 1 and len(self.disjuncts) > 1:
                body = f"({body})"
            parts.append(body)
        return f"{left} -> " + " | ".join(parts)

    def __repr__(self) -> str:
        return f"DisjunctiveTgd({self})"


Dependency = Union[Tgd, DisjunctiveTgd]


def iter_disjunctive(dependencies: Sequence[Dependency]) -> Iterator[DisjunctiveTgd]:
    """View a mixed dependency list uniformly as disjunctive tgds."""
    for dep in dependencies:
        yield dep.to_disjunctive() if isinstance(dep, Tgd) else dep
