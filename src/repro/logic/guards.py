"""Premise guards: inequalities and the ``Constant`` predicate.

The paper's richer dependency languages (Section 2) extend tgd premises
with two kinds of non-relational conjuncts:

* inequalities ``x ≠ x'`` between premise variables, and
* ``Constant(x)``, true exactly when ``x`` is bound to a constant.

Guards are evaluated against a variable binding produced by matching the
relational premise atoms.  Over instances with nulls, an inequality between
two *distinct* values is satisfied syntactically; the subtlety that distinct
nulls might still denote the same unknown value is handled one level up, by
the quotient branching of the disjunctive chase (see
:mod:`repro.chase.disjunctive`), not by the guard itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Union

from ..terms import Const, Term, Value, Var, is_term


def _resolve(term: Term, binding: Mapping[Var, Value]) -> Value:
    if isinstance(term, Var):
        try:
            return binding[term]
        except KeyError:
            raise KeyError(f"binding misses guard variable {term}")
    return term


@dataclass(frozen=True, order=True)
class Inequality:
    """The guard ``left ≠ right``."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        if not (is_term(self.left) and is_term(self.right)):
            raise TypeError("inequality endpoints must be terms (Var/Const)")

    def holds(self, binding: Mapping[Var, Value]) -> bool:
        """Syntactic disequality of the bound values."""
        return _resolve(self.left, binding) != _resolve(self.right, binding)

    def variables(self) -> FrozenSet[Var]:
        """The variables the guard needs bound before it can be checked.

        The matcher uses this to defer a guard exactly while some of
        its variables are unbound — and to let real evaluation errors
        propagate once they all are.
        """
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Var)
        )

    def substitute_terms(self, mapping: Mapping[Var, Term]) -> "Inequality":
        """Substitute into both sides (either may become a constant)."""
        left = mapping.get(self.left, self.left) if isinstance(self.left, Var) else self.left
        right = (
            mapping.get(self.right, self.right) if isinstance(self.right, Var) else self.right
        )
        return Inequality(left, right)

    def is_trivially_false(self) -> bool:
        """True for ``t ≠ t``, which no binding can satisfy."""
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


@dataclass(frozen=True, order=True)
class ConstantGuard:
    """The guard ``Constant(term)`` — satisfied when the value is a constant."""

    term: Term

    def __post_init__(self) -> None:
        if not is_term(self.term):
            raise TypeError("Constant() argument must be a term (Var/Const)")

    def holds(self, binding: Mapping[Var, Value]) -> bool:
        """True when the bound value is a constant (not a null)."""
        return isinstance(_resolve(self.term, binding), Const)

    def variables(self) -> FrozenSet[Var]:
        """The variables the guard needs bound before it can be checked."""
        if isinstance(self.term, Var):
            return frozenset((self.term,))
        return frozenset()

    def substitute_terms(self, mapping: Mapping[Var, Term]) -> "ConstantGuard":
        """Substitute into the guarded term."""
        term = mapping.get(self.term, self.term) if isinstance(self.term, Var) else self.term
        return ConstantGuard(term)

    def is_trivially_false(self) -> bool:
        """Constant guards are satisfiable for some binding: never false."""
        return False

    def __str__(self) -> str:
        return f"Constant({self.term})"


Guard = Union[Inequality, ConstantGuard]
