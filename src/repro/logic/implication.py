"""Dependency implication and logical equivalence, via the chase.

The classic decision procedure [Beeri-Vardi, JACM 1984] that the paper's
toolbox presupposes: a set of tgds Σ *implies* a tgd σ : ϕ → ∃y ψ iff
chasing the frozen premise of σ with Σ satisfies σ's conclusion.  On top
of implication we get equivalence of dependency sets and redundancy
pruning — used to normalize quasi-inverse outputs and composed mappings.

Scope: plain tgds (no disjunction; guards on the premise of the *implied*
dependency are honored by freezing, but implying sets must be guard-free
tgds so the chase applies).  Termination inherits the chase's
``max_rounds`` guard; for s-t shaped sets one round suffices.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..chase.standard import chase
from ..instance import Instance
from ..limits import Limits
from ..logic.matching import match_atoms
from ..terms import Null, Value, Var
from .dependencies import Dependency, Tgd


def _freeze_premise(tgd: Tgd) -> tuple[Instance, Dict[Var, Value]]:
    """The frozen premise of *tgd*: distinct fresh nulls per variable.

    Inequality guards on the tgd hold automatically (distinct nulls);
    ``Constant`` guards would not be faithfully frozen, so tgds with
    Constant guards are rejected by the callers.
    """
    binding: Dict[Var, Value] = {}
    counter = 0
    facts = []
    for atom in tgd.premise:
        for term in atom.terms:
            if isinstance(term, Var) and term not in binding:
                binding[term] = Null(f"FRZ{counter}")
                counter += 1
        facts.append(atom.instantiate(binding))
    return Instance(facts), binding


def implies(dependencies: Sequence[Dependency], candidate: Tgd,
            max_rounds: int = 64) -> bool:
    """Does Σ logically imply *candidate*?  (Beeri-Vardi chase test.)

    Chase the frozen premise of *candidate* with Σ; the implication holds
    iff some extension of the frozen binding witnesses the conclusion.
    """
    for dep in dependencies:
        if not isinstance(dep, Tgd) or not dep.is_plain():
            raise TypeError(
                f"implication test needs plain tgds in the implying set, got {dep}"
            )
    if candidate.uses_constant_guard():
        raise TypeError("Constant guards cannot be frozen faithfully")
    frozen, binding = _freeze_premise(candidate)
    limits = Limits(max_rounds=max_rounds, on_exhausted="raise")
    chased = chase(frozen, dependencies, limits=limits).instance
    seed = {v: binding[v] for v in candidate.frontier}
    return next(match_atoms(candidate.conclusion, chased, initial=seed), None) is not None


def equivalent(left: Sequence[Dependency], right: Sequence[Dependency],
               max_rounds: int = 64) -> bool:
    """Logical equivalence of two plain-tgd sets (mutual implication)."""
    return all(implies(left, dep, max_rounds) for dep in right) and all(
        implies(right, dep, max_rounds) for dep in left
    )


def prune_redundant(dependencies: Sequence[Tgd], max_rounds: int = 64) -> List[Tgd]:
    """Drop dependencies implied by the remaining ones.

    Processes in order, keeping a dependency only when the others do not
    already imply it; the result is equivalent to the input.
    """
    kept = list(dependencies)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1 :]
        if rest and implies(rest, candidate, max_rounds):
            kept = rest
        else:
            index += 1
    return kept
