"""Relational atoms over variables and constants.

Atoms are the building blocks of tgds and conjunctive queries.  Their
arguments are *terms* — variables or constants — never labeled nulls:
nulls live in instances only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Tuple

from ..facts import Fact
from ..terms import Const, Term, Value, Var, is_term


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``R(t1, ..., tn)`` with terms in ``Var ∪ Const``."""

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        for t in self.terms:
            if not is_term(t):
                raise TypeError(
                    f"atom {self.relation} contains {t!r}; atoms hold Var/Const only"
                )

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Var]:
        """Yield the variables of the atom, with repetitions."""
        for t in self.terms:
            if isinstance(t, Var):
                yield t

    def substitute_terms(self, mapping: Mapping[Var, Term]) -> "Atom":
        """Replace variables by terms (used for equality-type quotients)."""
        return Atom(
            self.relation,
            tuple(mapping.get(t, t) if isinstance(t, Var) else t for t in self.terms),
        )

    def instantiate(self, binding: Mapping[Var, Value]) -> Fact:
        """Turn the atom into a fact under a complete variable binding."""
        values = []
        for t in self.terms:
            if isinstance(t, Var):
                try:
                    values.append(binding[t])
                except KeyError:
                    raise KeyError(f"binding misses variable {t} of atom {self}")
            else:
                values.append(t)
        return Fact(self.relation, tuple(values))

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"


def atom(relation: str, *tokens: object) -> Atom:
    """Convenience constructor: ``atom("P", "x", "y")``.

    String tokens become variables; ints become constants; ``Var``/``Const``
    objects pass through.  (Note this differs from :func:`repro.instance.fact`,
    where strings denote constants or nulls — atoms live in formulas, where
    bare identifiers conventionally denote variables.)
    """
    terms = []
    for tok in tokens:
        if is_term(tok):
            terms.append(tok)
        elif isinstance(tok, str):
            terms.append(Var(tok))
        elif isinstance(tok, int):
            terms.append(Const(tok))
        else:
            raise TypeError(f"cannot build an atom term from {tok!r}")
    return Atom(relation, tuple(terms))
