"""Normalization of tgd sets.

Standard data-exchange preprocessing, used before feeding mappings to
the quasi-inverse algorithm or the composer:

* **split conclusions**: replace ``ϕ → A1 ∧ ... ∧ Ak`` (full tgd) by the
  k single-conclusion tgds ``ϕ → Ai``.  For *full* tgds this is
  logically equivalent; for existential tgds the conjunction shares its
  witnesses and must NOT be split (splitting weakens it), so those are
  passed through unchanged.
* **deduplicate modulo renaming**: two tgds equal up to a variable
  renaming are the same dependency; keep one representative.
* **minimize**: drop implied dependencies (re-exported from
  :mod:`repro.logic.implication`).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from ..terms import Term, Var
from .dependencies import Tgd
from .implication import prune_redundant


def split_full_conclusions(dependencies: Sequence[Tgd]) -> List[Tgd]:
    """Single-conclusion normal form for the full tgds of a set.

    Full tgds with k conclusion atoms become k tgds (equivalent);
    existential tgds pass through untouched (their conclusion atoms
    share witnesses).
    """
    out: List[Tgd] = []
    for dep in dependencies:
        if dep.is_full() and len(dep.conclusion) > 1:
            for atom in dep.conclusion:
                out.append(Tgd(dep.premise, (atom,), dep.guards))
        else:
            out.append(dep)
    return out


def _canonical_renaming(tgd: Tgd) -> Tgd:
    """Rename variables to x0, x1, ... in order of first occurrence."""
    order: List[Var] = []
    for atom in list(tgd.premise) + list(tgd.conclusion):
        for var in atom.variables():
            if var not in order:
                order.append(var)
    renaming: Dict[Var, Term] = {
        var: Var(f"x{i}") for i, var in enumerate(order)
    }
    return tgd.substitute_terms(renaming)


def dedup_modulo_renaming(dependencies: Sequence[Tgd]) -> List[Tgd]:
    """Collapse tgds that are equal up to variable renaming.

    Uses the canonical first-occurrence renaming as the signature; tgds
    with permuted atom ORDER are considered distinct (atom order is
    syntactic; logical duplicates across orders fall to `prune`).
    """
    seen = set()
    out: List[Tgd] = []
    for dep in dependencies:
        signature = _canonical_renaming(dep)
        if signature not in seen:
            seen.add(signature)
            out.append(dep)
    return out


def normalize(dependencies: Sequence[Tgd], prune: bool = True) -> List[Tgd]:
    """Split full conclusions, dedup modulo renaming, optionally prune.

    The result is logically equivalent to the input (splitting is only
    applied where equivalent; pruning uses the implication test).
    Pruning requires guard-free tgds and is skipped otherwise.
    """
    split = split_full_conclusions(list(dependencies))
    deduped = dedup_modulo_renaming(split)
    if prune and all(d.is_plain() for d in deduped):
        return prune_redundant(deduped)
    return deduped
