"""Matching conjunctions of atoms against an instance.

This is the shared engine under chase steps and conjunctive-query
evaluation: enumerate all variable bindings under which every relational
atom of a premise is a fact of the instance and every guard holds.

The matcher does a backtracking search, at each step picking the pending
atom with the fewest candidate facts given the bindings so far
(most-constrained-first), which keeps premise matching fast on the skewed
instances the workload generators produce.  Guards are checked as soon as
all their variables are bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..terms import Const, Value, Var

if TYPE_CHECKING:  # annotation-only: any InstanceStore-shaped object works
    from ..instance import Instance
from .atoms import Atom
from .guards import Guard


def _candidate_count(atom: Atom, instance: Instance, binding: Mapping[Var, Value]) -> int:
    """Cheap upper bound on how many facts could match *atom* now.

    Mirrors :func:`_candidates`: a partially bound atom will only probe
    the smallest position-index bucket among its bound positions, so
    that bucket size — not the full relation size — is the real cost.
    Counting the full relation here made the most-constrained-first
    ordering prefer fully-bound atoms over tightly-indexed ones and
    scan whole relations for nothing on skewed instances.
    """
    tuples = instance.tuples(atom.relation)
    if not tuples:
        return 0
    lookup = getattr(instance, "tuples_at", None)
    best: Optional[int] = None
    bound = 0
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            value: Optional[Value] = term
        elif isinstance(term, Var):
            value = binding.get(term)
        else:  # pragma: no cover - terms are Const/Var by construction
            value = None
        if value is None:
            continue
        bound += 1
        if lookup is not None:
            size = len(lookup(atom.relation, position, value))
            if best is None or size < best:
                best = size
                if best == 0:
                    return 0
    # Fully-bound atoms are membership tests (0 or 1 candidates).
    if bound == atom.arity:
        return 1 if best is None else min(1, best)
    if best is not None:
        return best
    return len(tuples)


def _candidates(atom: Atom, store, binding: Mapping[Var, Value]):
    """The tuples worth probing for *atom* given the current binding.

    When a term is already bound (a constant or a bound variable) and the
    store carries a position index, scan only that bucket — the smallest
    one among the bound positions.  Falls back to the full relation for
    unbound atoms or index-less stores (e.g. live chase builders).
    """
    lookup = getattr(store, "tuples_at", None)
    if lookup is None:
        return store.tuples(atom.relation)
    best = None
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            value = term
        elif isinstance(term, Var):
            value = binding.get(term)
            if value is None:
                continue
        else:  # pragma: no cover - terms are Const/Var by construction
            continue
        bucket = lookup(atom.relation, position, value)
        if best is None or len(bucket) < len(best):
            best = bucket
            if not best:
                break
    if best is None:
        return store.tuples(atom.relation)
    return best


def _match_fact(
    atom: Atom, values: Tuple[Value, ...], binding: Dict[Var, Value]
) -> Optional[Dict[Var, Value]]:
    """Try to extend *binding* so that *atom* maps onto *values*."""
    extension: Dict[Var, Value] = {}
    for term, value in zip(atom.terms, values):
        if isinstance(term, Const):
            if term != value:
                return None
        else:
            known = binding.get(term, extension.get(term))
            if known is None:
                extension[term] = value
            elif known != value:
                return None
    return extension


def match_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    guards: Sequence[Guard] = (),
    initial: Optional[Mapping[Var, Value]] = None,
) -> Iterator[Dict[Var, Value]]:
    """Yield every binding satisfying all *atoms* and *guards* in *instance*.

    Bindings map exactly the variables of *atoms* plus those of *initial*.
    With no atoms, yields the initial binding once (if the guards hold).
    """
    binding: Dict[Var, Value] = dict(initial) if initial else {}

    def guards_ok(b: Mapping[Var, Value]) -> bool:
        for guard in guards:
            try:
                if not guard.holds(b):
                    return False
            except KeyError:
                # Guard variable not yet bound; defer to a later check.
                continue
        return True

    def all_guards_ok(b: Mapping[Var, Value]) -> bool:
        return all(guard.holds(b) for guard in guards)

    def search(pending: list, b: Dict[Var, Value]) -> Iterator[Dict[Var, Value]]:
        if not pending:
            if all_guards_ok(b):
                yield dict(b)
            return
        # Most-constrained-first: pick the cheapest pending atom.
        index = min(
            range(len(pending)),
            key=lambda i: _candidate_count(pending[i], instance, b),
        )
        atom = pending[index]
        rest = pending[:index] + pending[index + 1 :]
        for values in _candidates(atom, instance, b):
            extension = _match_fact(atom, values, b)
            if extension is None:
                continue
            b.update(extension)
            if guards_ok(b):
                yield from search(rest, b)
            for var in extension:
                del b[var]

    yield from search(list(atoms), binding)


def has_match(
    atoms: Sequence[Atom],
    instance: Instance,
    guards: Sequence[Guard] = (),
    initial: Optional[Mapping[Var, Value]] = None,
) -> bool:
    """True when at least one binding exists."""
    return next(match_atoms(atoms, instance, guards, initial), None) is not None
