"""Matching conjunctions of atoms against a match source.

This is the shared engine under chase steps and conjunctive-query
evaluation: enumerate all variable bindings under which every relational
atom of a premise is a fact of the source and every guard holds.

The matcher does a backtracking search, at each step picking the pending
atom with the fewest candidate facts given the bindings so far
(most-constrained-first), which keeps premise matching fast on the skewed
instances the workload generators produce.  Guards are checked as soon as
all their variables are bound.

The matching contract
---------------------

What used to be informal ``getattr(store, "tuples_at", ...)`` duck
typing is now the documented contract, named :class:`MatchSource`: any
object offering

* ``tuples(relation) -> Sequence[Tuple[Value, ...]]`` — the rows of a
  relation (an empty sequence when the relation is absent); and,
  optionally,
* ``tuples_at(relation, position, value) -> Sequence[Tuple[Value, ...]]``
  — the rows holding *value* at *position*

can be matched against.  ``tuples`` alone is sufficient (the matcher
falls back to full-relation scans); ``tuples_at`` is the accelerator
that lets the matcher probe only the smallest index bucket among the
bound positions.  Satisfying sources include :class:`~repro.instance.
Instance` (over any store backend), a live :class:`~repro.instance.
InstanceBuilder`, every :class:`~repro.store.InstanceStore`, and the
:class:`~repro.logic.delta.TriggerIndex` (whose round view powers the
semi-naive chase — see :func:`repro.logic.delta.match_atoms_delta`).

``match_atoms``/``has_match`` accept the source as the second positional
argument, now named ``source``; the historical keyword spelling
``instance=`` keeps working as a warn-free shim.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..terms import Const, Value, Var
from .atoms import Atom
from .guards import Guard

__all__ = [
    "MatchSource",
    "has_match",
    "match_atoms",
]


@runtime_checkable
class MatchSource(Protocol):
    """Anything premise atoms can be matched against.

    See the module docstring for the full contract; ``tuples`` is the
    one required method.  ``tuples_at`` is optional and detected with
    ``getattr`` — a source without it still matches correctly, only
    slower (full-relation scans instead of index-bucket probes).
    """

    def tuples(self, relation: str) -> Sequence[Tuple[Value, ...]]:
        """The rows of *relation* (an empty sequence when absent)."""
        ...


def _candidate_count(
    atom: Atom, source: MatchSource, binding: Mapping[Var, Value]
) -> int:
    """Cheap upper bound on how many facts could match *atom* now.

    Mirrors :func:`_candidates`: a partially bound atom will only probe
    the smallest position-index bucket among its bound positions, so
    that bucket size — not the full relation size — is the real cost.
    Counting the full relation here made the most-constrained-first
    ordering prefer fully-bound atoms over tightly-indexed ones and
    scan whole relations for nothing on skewed instances.
    """
    tuples = source.tuples(atom.relation)
    if not tuples:
        return 0
    lookup = getattr(source, "tuples_at", None)
    best: Optional[int] = None
    bound = 0
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            value: Optional[Value] = term
        elif isinstance(term, Var):
            value = binding.get(term)
        else:  # pragma: no cover - terms are Const/Var by construction
            value = None
        if value is None:
            continue
        bound += 1
        if lookup is not None:
            size = len(lookup(atom.relation, position, value))
            if best is None or size < best:
                best = size
                if best == 0:
                    return 0
    # Fully-bound atoms are membership tests (0 or 1 candidates).
    if bound == atom.arity:
        return 1 if best is None else min(1, best)
    if best is not None:
        return best
    return len(tuples)


def _candidates(atom: Atom, source: MatchSource, binding: Mapping[Var, Value]):
    """The tuples worth probing for *atom* given the current binding.

    When a term is already bound (a constant or a bound variable) and the
    source carries a position index, scan only that bucket — the smallest
    one among the bound positions.  Falls back to the full relation for
    unbound atoms or index-less sources (e.g. live chase builders).
    """
    lookup = getattr(source, "tuples_at", None)
    if lookup is None:
        return source.tuples(atom.relation)
    best = None
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            value = term
        elif isinstance(term, Var):
            value = binding.get(term)
            if value is None:
                continue
        else:  # pragma: no cover - terms are Const/Var by construction
            continue
        bucket = lookup(atom.relation, position, value)
        if best is None or len(bucket) < len(best):
            best = bucket
            if not best:
                break
    if best is None:
        return source.tuples(atom.relation)
    return best


def _match_fact(
    atom: Atom, values: Tuple[Value, ...], binding: Dict[Var, Value]
) -> Optional[Dict[Var, Value]]:
    """Try to extend *binding* so that *atom* maps onto *values*."""
    extension: Dict[Var, Value] = {}
    for term, value in zip(atom.terms, values):
        if isinstance(term, Const):
            if term != value:
                return None
        else:
            known = binding.get(term, extension.get(term))
            if known is None:
                extension[term] = value
            elif known != value:
                return None
    return extension


def _guards_ok(guards: Sequence[Guard], binding: Mapping[Var, Value]) -> bool:
    """Check guards mid-search, deferring only genuinely unbound ones.

    A guard whose variables are all bound is evaluated for real, and any
    exception it raises propagates — historically a ``KeyError`` from a
    buggy ``holds()`` was silently swallowed as "variable not bound
    yet", turning the bug into a wrong answer.  Guards that do not
    expose ``variables()`` (duck-typed third-party guards) keep the old
    defer-on-KeyError behavior.
    """
    for guard in guards:
        variables_of = getattr(guard, "variables", None)
        if variables_of is not None:
            if any(v not in binding for v in variables_of()):
                continue  # genuinely unbound: defer to the leaf check
            if not guard.holds(binding):
                return False
            continue
        try:
            if not guard.holds(binding):
                return False
        except KeyError:
            continue
    return True


def _all_guards_ok(
    guards: Sequence[Guard], binding: Mapping[Var, Value]
) -> bool:
    """The leaf check: every variable is bound, every guard must hold."""
    return all(guard.holds(binding) for guard in guards)


def match_atoms(
    atoms: Sequence[Atom],
    source: Optional[MatchSource] = None,
    guards: Sequence[Guard] = (),
    initial: Optional[Mapping[Var, Value]] = None,
    *,
    instance: Optional[MatchSource] = None,
) -> Iterator[Dict[Var, Value]]:
    """Yield every binding satisfying all *atoms* and *guards* in *source*.

    *source* is any :class:`MatchSource` — see the module docstring for
    the contract (``instance=`` is the historical keyword spelling and
    keeps working, warning-free).  Bindings map exactly the variables of
    *atoms* plus those of *initial*.  With no atoms, yields the initial
    binding once (if the guards hold).

    Enumeration order is deterministic given the source's row order:
    the semi-naive chase relies on this to keep delta-driven firing
    sequences identical to naive ones
    (:func:`repro.logic.delta.match_atoms_delta`).
    """
    if source is None:
        source = instance
        if source is None:
            raise TypeError("match_atoms() missing required argument: 'source'")
    binding: Dict[Var, Value] = dict(initial) if initial else {}

    def search(pending: list, b: Dict[Var, Value]) -> Iterator[Dict[Var, Value]]:
        if not pending:
            if _all_guards_ok(guards, b):
                yield dict(b)
            return
        # Most-constrained-first: pick the cheapest pending atom.
        index = min(
            range(len(pending)),
            key=lambda i: _candidate_count(pending[i], source, b),
        )
        atom = pending[index]
        rest = pending[:index] + pending[index + 1 :]
        for values in _candidates(atom, source, b):
            extension = _match_fact(atom, values, b)
            if extension is None:
                continue
            b.update(extension)
            if _guards_ok(guards, b):
                yield from search(rest, b)
            for var in extension:
                del b[var]

    yield from search(list(atoms), binding)


def has_match(
    atoms: Sequence[Atom],
    source: Optional[MatchSource] = None,
    guards: Sequence[Guard] = (),
    initial: Optional[Mapping[Var, Value]] = None,
    *,
    instance: Optional[MatchSource] = None,
) -> bool:
    """True when at least one binding exists (same contract as match_atoms)."""
    if source is None:
        source = instance
    return next(match_atoms(atoms, source, guards, initial), None) is not None
