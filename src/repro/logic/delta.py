"""Delta-driven (semi-naive) trigger indexing for the chase.

Both fixpoint loops historically re-matched every premise against the
*whole* instance each round, so round ``k`` paid for rounds ``1..k-1``
again.  This module provides the machinery for semi-naive evaluation:

* :class:`TriggerIndex` — an incrementally maintained per-relation /
  per-(position, value) index.  The chase adds facts through it as they
  are fired (it implements the builder protocol: ``add``/``add_all``/
  ``__len__``/``snapshot``) and it simultaneously implements the
  matching protocol (``tuples``/``tuples_at``), so the same object is a
  :class:`~repro.logic.matching.MatchSource` for live satisfaction
  checks and for homomorphism search.  ``begin_round()`` rotates the
  round boundary and returns the *delta* — the facts new since the
  previous boundary; ``round_view()`` is a MatchSource showing only the
  facts visible at the current boundary (what the naive loop's
  per-round snapshot used to show).
* :func:`match_atoms_delta` — enumerate exactly the premise bindings
  that use at least one delta fact, **in the same relative order** that
  :func:`~repro.logic.matching.match_atoms` would have produced them.
  This is what lets the semi-naive chase keep its firing sequence (and
  therefore null names, budget truncation points, and tracer streams)
  identical to the naive loop's.

Order preservation is the design constraint that shapes the code (see
DESIGN.md, decision D5): the textbook semi-naive rewriting — a union
of queries, one per premise position seeded with a delta atom —
enumerates bindings grouped by which atom is "the delta atom" and would
reorder firings.  Instead, :func:`match_atoms_delta` runs the *same*
most-constrained-first backtracking search as ``match_atoms`` over the
same view and prunes: a subtree is abandoned as soon as no delta fact
can appear in it, and when exactly one pending atom's relation carries
delta facts, that atom's candidates are filtered to the delta members
(preserving their order).  The yields are then exactly the delta subset
of the naive enumeration, in naive order.

Rows enter the index in a canonical order — seed facts sorted by
:meth:`repro.facts.Fact.sort_key`, fired facts in firing order — so
chase enumeration no longer depends on Python's per-process hash
randomization: equal inputs now chase to byte-identical outputs across
processes and store backends.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import islice
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..facts import Fact
from ..terms import Value, Var, value_sort_key
from .atoms import Atom
from .guards import Guard
from .matching import (
    _all_guards_ok,
    _candidate_count,
    _candidates,
    _guards_ok,
    _match_fact,
)

if TYPE_CHECKING:
    from ..instance import Instance

__all__ = [
    "Delta",
    "TriggerIndex",
    "binding_sort_key",
    "match_atoms_delta",
]

#: A round's worth of new facts: relation name → set of value rows.
Delta = Mapping[str, AbstractSet[Tuple[Value, ...]]]


def binding_sort_key(binding: Mapping[Var, Value]) -> tuple:
    """A total, content-determined order over bindings of one premise.

    Bindings of the same premise always bind the same variable set, so
    sorting the items by variable name and keying values through
    :func:`repro.terms.value_sort_key` yields a key that is unique per
    binding and independent of dict insertion order.  The disjunctive
    chase uses it to pick triggers canonically (see
    :mod:`repro.chase.disjunctive`).
    """
    return tuple(
        (var.name, value_sort_key(value))
        for var, value in sorted(binding.items())
    )


class _Prefix(Sequence):
    """A zero-copy prefix view of a growing row list.

    The round view hands these out instead of slices: the matcher only
    needs ``len``/``iter``/truthiness on candidate sequences, and the
    underlying list may gain rows (beyond the prefix) while a generator
    is suspended — list appends never disturb an ``islice`` bounded
    below the append point.
    """

    __slots__ = ("_rows", "_stop")

    def __init__(self, rows: Sequence, stop: int) -> None:
        self._rows = rows
        self._stop = stop

    def __len__(self) -> int:
        return self._stop

    def __bool__(self) -> bool:
        return self._stop > 0

    def __iter__(self) -> Iterator:
        return islice(iter(self._rows), self._stop)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        if index < 0:
            index += self._stop
        if not 0 <= index < self._stop:
            raise IndexError("prefix index out of range")
        return self._rows[index]


class _RoundView:
    """The facts visible at the index's current round boundary.

    A :class:`~repro.logic.matching.MatchSource`: behaves exactly like a
    frozen snapshot taken at ``begin_round()`` time, without copying —
    ``tuples``/``tuples_at`` expose per-relation (and per-bucket)
    prefixes of the live index, computed against the visibility
    boundary.  Facts fired *during* the round land beyond the boundary
    and stay invisible here until the next ``begin_round()``.
    """

    __slots__ = ("_index",)

    def __init__(self, index: "TriggerIndex") -> None:
        self._index = index

    def tuples(self, relation: str) -> Sequence[Tuple[Value, ...]]:
        """The visible rows of *relation*, in index order."""
        idx = self._index
        rows = idx._rows.get(relation)
        if rows is None:
            return ()
        return _Prefix(rows, idx._visible.get(relation, 0))

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Sequence[Tuple[Value, ...]]:
        """The visible rows of *relation* holding *value* at *position*."""
        idx = self._index
        buckets = idx._buckets.get(relation)
        if buckets is None:
            return ()
        entry = buckets.get((position, value))
        if entry is None:
            return ()
        bucket_rows, bucket_seqs = entry
        visible = idx._visible.get(relation, 0)
        return _Prefix(bucket_rows, bisect_left(bucket_seqs, visible))


class TriggerIndex:
    """Per-relation/position indexes maintained as the chase adds facts.

    The index is three things at once, which is the point — one data
    structure serves the whole round loop:

    * a **builder**: ``add``/``add_all`` accumulate fired facts
      (deduplicated), ``snapshot()`` freezes them into an
      :class:`~repro.instance.Instance`;
    * a **live MatchSource**: ``tuples``/``tuples_at`` see everything
      added so far, which is exactly what restricted-variant
      satisfaction checks and hom search need (and faster than the old
      index-less builder scans — buckets are appended to, never
      rebuilt);
    * a **delta source**: ``begin_round()`` advances the visibility
      boundary and returns the rows added since the previous boundary,
      and ``round_view()`` is the matching source frozen at that
      boundary.

    Row order is canonical: construction seeds the base instance's
    facts in :meth:`~repro.facts.Fact.sort_key` order, and fired facts
    append in firing order.  Enumeration order therefore never depends
    on hash randomization — see the module docstring.

    ``fork()`` clones the index for disjunctive-chase branches: each
    branch extends its own copy and computes its own deltas.
    """

    __slots__ = ("_rows", "_row_sets", "_buckets", "_visible", "_count")

    def __init__(self, base: Optional["Instance"] = None) -> None:
        """Start empty, or seeded with *base*'s facts (canonical order)."""
        # rows: relation → list of value tuples, in insertion order.
        self._rows: Dict[str, List[Tuple[Value, ...]]] = {}
        # row_sets: relation → set of the same tuples, for O(1) dedup.
        self._row_sets: Dict[str, set] = {}
        # buckets: relation → (position, value) → parallel lists of
        # (rows, row sequence numbers); sequence numbers are the row's
        # index in _rows[relation], strictly increasing per bucket.
        self._buckets: Dict[
            str, Dict[Tuple[int, Value], Tuple[list, List[int]]]
        ] = {}
        # visible: relation → how many rows the round view exposes.
        self._visible: Dict[str, int] = {}
        self._count = 0
        if base is not None:
            for rel in base.relation_names:
                for row in sorted(
                    base.tuples(rel),
                    key=lambda t: tuple(value_sort_key(v) for v in t),
                ):
                    self._append(rel, row)

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------

    def _append(self, relation: str, row: Tuple[Value, ...]) -> bool:
        row_set = self._row_sets.get(relation)
        if row_set is None:
            row_set = set()
            self._row_sets[relation] = row_set
            self._rows[relation] = []
            self._buckets[relation] = {}
        if row in row_set:
            return False
        rows = self._rows[relation]
        seq = len(rows)
        row_set.add(row)
        rows.append(row)
        buckets = self._buckets[relation]
        for position, value in enumerate(row):
            entry = buckets.get((position, value))
            if entry is None:
                buckets[(position, value)] = ([row], [seq])
            else:
                entry[0].append(row)
                entry[1].append(seq)
        self._count += 1
        return True

    # ------------------------------------------------------------------
    # Builder protocol
    # ------------------------------------------------------------------

    def add(self, f: Fact) -> bool:
        """Add a fact; return True when it was new."""
        return self._append(f.relation, f.values)

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    def __len__(self) -> int:
        return self._count

    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        row_set = self._row_sets.get(f.relation)
        return row_set is not None and f.values in row_set

    def facts(self) -> Iterator[Fact]:
        """Iterate every fact, in index (insertion) order."""
        for relation, rows in self._rows.items():
            for row in rows:
                yield Fact(relation, row)

    def snapshot(self) -> "Instance":
        """Freeze the current contents into an :class:`Instance`."""
        from ..instance import Instance

        return Instance(self.facts())

    # ------------------------------------------------------------------
    # MatchSource protocol (the live view: everything added so far)
    # ------------------------------------------------------------------

    def tuples(self, relation: str) -> Sequence[Tuple[Value, ...]]:
        """All rows of *relation*, in index order (empty when absent)."""
        return self._rows.get(relation, ())

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Sequence[Tuple[Value, ...]]:
        """All rows of *relation* holding *value* at *position*."""
        buckets = self._buckets.get(relation)
        if buckets is None:
            return ()
        entry = buckets.get((position, value))
        if entry is None:
            return ()
        return entry[0]

    # ------------------------------------------------------------------
    # Delta machinery
    # ------------------------------------------------------------------

    def begin_round(self) -> Dict[str, FrozenSet[Tuple[Value, ...]]]:
        """Advance the round boundary; return the newly visible rows.

        The returned delta maps each relation to the (frozen) set of
        rows added since the previous ``begin_round()`` — on the first
        call, every seeded row.  Relations with no new rows are absent.
        """
        delta: Dict[str, FrozenSet[Tuple[Value, ...]]] = {}
        for relation, rows in self._rows.items():
            seen = self._visible.get(relation, 0)
            if seen < len(rows):
                delta[relation] = frozenset(rows[seen:])
                self._visible[relation] = len(rows)
        return delta

    def round_view(self) -> _RoundView:
        """A MatchSource frozen at the current round boundary."""
        return _RoundView(self)

    def fork(self) -> "TriggerIndex":
        """An independent copy, for disjunctive-chase branch forks.

        The clone shares row tuples (immutable) but owns its lists and
        sets: adds and round rotations on either side never show
        through to the other.
        """
        clone = TriggerIndex.__new__(TriggerIndex)
        clone._rows = {rel: list(rows) for rel, rows in self._rows.items()}
        clone._row_sets = {
            rel: set(row_set) for rel, row_set in self._row_sets.items()
        }
        clone._buckets = {
            rel: {
                key: (list(entry[0]), list(entry[1]))
                for key, entry in buckets.items()
            }
            for rel, buckets in self._buckets.items()
        }
        clone._visible = dict(self._visible)
        clone._count = self._count
        return clone


def match_atoms_delta(
    atoms: Sequence[Atom],
    source,
    delta: Delta,
    guards: Sequence[Guard] = (),
    initial: Optional[Mapping[Var, Value]] = None,
) -> Iterator[Dict[Var, Value]]:
    """Yield the bindings of *atoms* over *source* that use a delta fact.

    *source* is any :class:`~repro.logic.matching.MatchSource` (normally
    a :meth:`TriggerIndex.round_view`); *delta* maps relation names to
    sets of rows new since the previous round.  The yields are exactly
    the bindings ``match_atoms(atoms, source, guards, initial)`` would
    produce whose instantiated premise includes at least one delta row
    — **in the same relative order** (see the module docstring for why
    that matters and how the pruning stays order-preserving).

    With an empty delta nothing is yielded; a delta covering the whole
    source makes this equivalent to ``match_atoms``.
    """
    binding: Dict[Var, Value] = dict(initial) if initial else {}
    live = frozenset(rel for rel, rows in delta.items() if rows)
    if not live:
        return

    def search(
        pending: list, b: Dict[Var, Value], seen_delta: bool
    ) -> Iterator[Dict[Var, Value]]:
        if not pending:
            if seen_delta and _all_guards_ok(guards, b):
                yield dict(b)
            return
        if not seen_delta and not any(a.relation in live for a in pending):
            # No delta fact can enter this subtree: every leaf would be
            # an old binding the naive loop already handled.
            return
        index = min(
            range(len(pending)),
            key=lambda i: _candidate_count(pending[i], source, b),
        )
        atom = pending[index]
        rest = pending[:index] + pending[index + 1 :]
        atom_delta = delta.get(atom.relation, ())
        # When this is the only pending atom whose relation has delta
        # rows and none was seen yet, every yield below must use one of
        # *its* delta rows — filter the candidates down (order intact).
        must_be_new = (
            not seen_delta
            and atom.relation in live
            and not any(a.relation in live for a in rest)
        )
        for values in _candidates(atom, source, b):
            is_new = values in atom_delta
            if must_be_new and not is_new:
                continue
            extension = _match_fact(atom, values, b)
            if extension is None:
                continue
            b.update(extension)
            if _guards_ok(guards, b):
                yield from search(rest, b, seen_delta or is_new)
            for var in extension:
                del b[var]

    yield from search(list(atoms), binding, False)
