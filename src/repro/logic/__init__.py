"""First-order building blocks: atoms, guards, dependencies, queries."""

from .atoms import Atom, atom
from .guards import ConstantGuard, Inequality
from .dependencies import Dependency, DisjunctiveTgd, Tgd
from .queries import ConjunctiveQuery
from .matching import match_atoms
from .containment import contained_in, equivalent_queries, minimize_query
from .implication import equivalent, implies, prune_redundant
from .normalization import normalize, split_full_conclusions

__all__ = [
    "Atom",
    "atom",
    "ConstantGuard",
    "Inequality",
    "Dependency",
    "DisjunctiveTgd",
    "Tgd",
    "ConjunctiveQuery",
    "match_atoms",
    "contained_in",
    "equivalent_queries",
    "minimize_query",
    "equivalent",
    "implies",
    "prune_redundant",
    "normalize",
    "split_full_conclusions",
]
