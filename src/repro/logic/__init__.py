"""First-order building blocks: atoms, guards, dependencies, queries."""

from .atoms import Atom, atom
from .guards import ConstantGuard, Inequality
from .dependencies import Dependency, DisjunctiveTgd, Tgd
from .queries import ConjunctiveQuery
from .matching import MatchSource, has_match, match_atoms
from .delta import TriggerIndex, binding_sort_key, match_atoms_delta
from .containment import contained_in, equivalent_queries, minimize_query
from .implication import equivalent, implies, prune_redundant
from .normalization import normalize, split_full_conclusions

__all__ = [
    "Atom",
    "atom",
    "ConstantGuard",
    "Inequality",
    "Dependency",
    "DisjunctiveTgd",
    "Tgd",
    "ConjunctiveQuery",
    "MatchSource",
    "TriggerIndex",
    "binding_sort_key",
    "has_match",
    "match_atoms",
    "match_atoms_delta",
    "contained_in",
    "equivalent_queries",
    "minimize_query",
    "equivalent",
    "implies",
    "prune_redundant",
    "normalize",
    "split_full_conclusions",
]
