"""Conjunctive queries and their evaluation.

Section 6.2 of the paper answers conjunctive queries over the source schema
under certain-answer semantics.  A conjunctive query here is

    ``q(x) :- A1, ..., Ak``

with distinguished (head) variables ``x`` and relational body atoms; the
remaining body variables are existential.  Evaluation over instances with
nulls is *naive*: nulls are matched like ordinary values, and the caller
decides whether to keep answer tuples containing nulls
(:meth:`ConjunctiveQuery.evaluate`) or to discard them — the paper's
``q(I)↓`` (:meth:`ConjunctiveQuery.evaluate_null_free`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from ..instance import Instance
from ..terms import Const, Value, Var
from .atoms import Atom
from .matching import match_atoms


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with head variables and a body of atoms."""

    head: Tuple[Var, ...]
    body: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("conjunctive query needs at least one body atom")
        body_vars = {v for a in self.body for v in a.variables()}
        loose = set(self.head) - body_vars
        if loose:
            names = ", ".join(sorted(v.name for v in loose))
            raise ValueError(f"head variables {{{names}}} missing from query body")

    @classmethod
    def build(cls, head_names: Iterable[str], body: Iterable[Atom]) -> "ConjunctiveQuery":
        return cls(tuple(Var(n) for n in head_names), tuple(body))

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def evaluate(self, instance: Instance) -> FrozenSet[Tuple[Value, ...]]:
        """Naive evaluation: answer tuples may contain nulls."""
        answers = set()
        for binding in match_atoms(self.body, instance):
            answers.add(tuple(binding[v] for v in self.head))
        return frozenset(answers)

    def evaluate_null_free(self, instance: Instance) -> FrozenSet[Tuple[Value, ...]]:
        """The paper's ``q(I)↓``: evaluate and drop tuples containing nulls."""
        return frozenset(
            row
            for row in self.evaluate(instance)
            if all(isinstance(v, Const) for v in row)
        )

    def holds_in(self, instance: Instance) -> bool:
        """Boolean-query satisfaction (exists a match)."""
        return next(match_atoms(self.body, instance), None) is not None

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = " & ".join(str(a) for a in self.body)
        return f"q({head}) :- {body}"


def certain_answers_over_set(
    query: ConjunctiveQuery, instances: Iterable[Instance]
) -> FrozenSet[Tuple[Value, ...]]:
    """``(⋂_K q(K))↓`` — the combinator used by Theorem 6.5.

    Intersect the naive answers over every instance in the collection, then
    discard tuples containing nulls.  With an empty collection the certain
    answers are conventionally empty (no evidence for any tuple).
    """
    result = None
    for inst in instances:
        answers = query.evaluate(inst)
        result = answers if result is None else (result & answers)
        if not result:
            return frozenset()
    if result is None:
        return frozenset()
    return frozenset(
        row for row in result if all(isinstance(v, Const) for v in row)
    )
