"""Conjunctive-query containment and minimization.

The Chandra-Merlin homomorphism theorem, the classical companion of the
chase: ``q1 ⊆ q2`` (containment on all instances) iff evaluating ``q2``
over the *frozen body* of ``q1`` returns ``q1``'s frozen head.  On top:
query equivalence and body minimization (the query's core), with head
variables frozen as constants so they cannot be folded away.

Reverse query answering (Section 6.2) deals in conjunctive queries;
these utilities let users normalize queries before computing certain
answers and let the test suite state query-level identities compactly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..instance import Instance
from ..terms import Const, Null, Value, Var
from .atoms import Atom
from .queries import ConjunctiveQuery


def _freeze(query: ConjunctiveQuery) -> Tuple[Instance, Tuple[Value, ...]]:
    """The canonical ("frozen") database of a query.

    Head variables freeze to distinguished constants (they must map to
    themselves under any containment homomorphism); existential body
    variables freeze to nulls.
    """
    head_vars = set(query.head)
    mapping: Dict[Var, Value] = {}
    for atom in query.body:
        for term in atom.terms:
            if isinstance(term, Var) and term not in mapping:
                if term in head_vars:
                    mapping[term] = Const(f"__head_{term.name}")
                else:
                    mapping[term] = Null(f"FRZ_{term.name}")
    facts = [atom.instantiate(mapping) for atom in query.body]
    head = tuple(mapping[v] for v in query.head)
    return Instance(facts), head


def contained_in(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """``first ⊆ second``: every answer of *first* is one of *second*.

    Decided by evaluating *second* over *first*'s frozen body and
    checking for the frozen head (Chandra-Merlin).  Queries must have
    the same head arity.
    """
    if len(first.head) != len(second.head):
        raise ValueError(
            f"head arities differ: {len(first.head)} vs {len(second.head)}"
        )
    frozen, head = _freeze(first)
    return head in second.evaluate(frozen)


def equivalent_queries(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Containment in both directions."""
    return contained_in(first, second) and contained_in(second, first)


def minimize_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The minimal equivalent query, unique up to renaming.

    Drops body atoms while the smaller query stays equivalent.  Since dropping
    atoms only *weakens* a CQ (fewer joins ⇒ more answers), it suffices
    to check ``smaller ⊆ query`` at each step.
    """
    body = list(query.body)
    index = 0
    while index < len(body) and len(body) > 1:
        candidate_body = body[:index] + body[index + 1 :]
        head_vars = set(query.head)
        still_safe = head_vars <= {
            v for atom in candidate_body for v in atom.variables()
        }
        if still_safe:
            candidate = ConjunctiveQuery(query.head, tuple(candidate_body))
            if contained_in(candidate, query):
                body = candidate_body
                continue
        index += 1
    return ConjunctiveQuery(query.head, tuple(body))
