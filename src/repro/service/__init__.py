"""The long-lived exchange service behind ``repro serve``.

Three layers, each usable on its own:

* :mod:`repro.service.diskcache` — the persistent content-addressed
  result cache (``DiskCache``), shared by the engine's
  :class:`repro.engine.cache.TieredCache` backing tier and the
  service's response cache;
* :mod:`repro.service.pool` — the warm supervised worker pool
  (``WarmPool``): N persistent engine processes with heartbeat
  supervision and in-place respawn;
* :mod:`repro.service.http` — the stdlib JSON/HTTP front end
  (``ExchangeService``, ``serve``) with admission control, tiered
  response caching, and graceful drain.

See ``docs/SERVICE.md`` for the protocol and operational semantics.
"""

from .diskcache import (
    CACHE_OFF_VALUES,
    DEFAULT_CACHE_DIR,
    DiskCache,
    DiskCacheStats,
    GcReport,
    resolve_cache_dir,
)
from .http import ExchangeService, ServiceServer, serve
from .ops import (
    SERVICE_OPS,
    ServiceRequestError,
    execute_op,
    request_key,
    validate_request,
)
from .pool import PoolDraining, PoolJob, PoolSaturated, WarmPool, pool_available

__all__ = [
    "CACHE_OFF_VALUES",
    "DEFAULT_CACHE_DIR",
    "DiskCache",
    "DiskCacheStats",
    "ExchangeService",
    "GcReport",
    "PoolDraining",
    "PoolJob",
    "PoolSaturated",
    "SERVICE_OPS",
    "ServiceRequestError",
    "ServiceServer",
    "WarmPool",
    "execute_op",
    "pool_available",
    "request_key",
    "resolve_cache_dir",
    "serve",
    "validate_request",
]
