"""The ``repro serve`` HTTP front end: a long-lived exchange service.

Pure stdlib — :class:`http.server.ThreadingHTTPServer` with a JSON
protocol — because the service's interesting parts live elsewhere: the
warm supervised worker pool (:mod:`repro.service.pool`), the persistent
content-addressed cache (:mod:`repro.service.diskcache`), and the
validation/execution semantics (:mod:`repro.service.ops`).

Endpoints
---------

``POST /v1/chase`` · ``POST /v1/reverse`` · ``POST /v1/audit`` ·
``POST /v1/answer``
    One exchange operation per request, JSON body in, JSON body out.
    Responses carry a ``cache`` object — ``{"hit": true, "layer":
    "memory" | "disk"}`` or ``{"hit": false, "layer": null}`` — naming
    which tier (if any) served them.

``GET /metrics``
    OpenMetrics exposition (the same
    :class:`repro.obs.OpenMetricsSink` format ``--metrics-out``
    writes), service request counters merged in.

``GET /healthz``
    Pool and cache health as JSON; 200 while serving, 503 once a drain
    has begun (load balancers read this).

Admission control and status codes
----------------------------------

The service sheds load instead of queueing unboundedly:

* **400** — request failed validation (server-side parse; a malformed
  mapping never occupies a pool worker);
* **429** — the pool backlog is full (:class:`~repro.service.pool.
  PoolSaturated`); clients should back off and retry;
* **503** — the service is draining after SIGTERM; in-flight requests
  finish, new ones are refused;
* **500** — the operation itself failed; the body carries the
  structured ``{"type", "message", "kind"}`` error, where ``kind:
  "killed"`` means the pool supervisor hard-killed a hung worker (and
  already respawned the slot in place).

Caching
-------

Two response tiers sit **in front of** the pool: an in-memory LRU and
the shared :class:`~repro.service.diskcache.DiskCache` (the same
directory the workers' engines use as their backing tier, under
disjoint ``service``-prefixed keys).  Only complete results are cached
— partial (``exhausted``) and failed responses always recompute.
Every request is recorded as an :class:`repro.obs.OpRecord` in the run
registry, so ``repro runs`` reporting covers service traffic too.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..engine.cache import LRUCache
from ..obs.context import TraceContext, context_scope, mint_context
from ..obs.export import spans_payload
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import OpRecord
from ..obs.tracer import Tracer
from .diskcache import DiskCache
from .ops import (
    SERVICE_OPS,
    ServiceRequestError,
    error_payload,
    request_key,
    validate_request,
)
from .pool import PoolDraining, PoolSaturated, WarmPool

#: Map a structured error ``kind`` to its HTTP status.
_ERROR_STATUS = {
    "invalid": 400,
    "budget": 500,
    "cancelled": 500,
    "killed": 500,
    "internal": 500,
}


class ExchangeService:
    """The service core: admission, response caching, pool dispatch.

    Deliberately HTTP-free — :class:`_Handler` translates wire requests
    into :meth:`handle` calls, and tests drive :meth:`handle` directly.
    """

    def __init__(
        self,
        pool: WarmPool,
        cache_dir: Optional[str] = None,
        response_cache_size: int = 256,
        allow_faults: bool = False,
        sink=None,
        registry=None,
    ) -> None:
        """Assemble the service around an already-started *pool*.

        *cache_dir* enables the persistent response tier (shared with
        the workers' engine caches); *response_cache_size* bounds the
        in-memory tier (0 = every repeat reads from disk — CI uses this
        to make disk hits deterministic).  *sink* is an optional
        :class:`repro.obs.OpenMetricsSink`; *registry* an optional
        :class:`repro.obs.RunRegistry`.
        """
        self.pool = pool
        self.memory = LRUCache(response_cache_size)
        self.disk = DiskCache(cache_dir) if cache_dir else None
        self.allow_faults = allow_faults
        self.sink = sink
        self.registry = registry
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        if sink is not None:
            sink.extra = self.metrics
        self.started = time.time()

    # -- request path ---------------------------------------------------

    def handle(
        self,
        op: str,
        body: Any,
        context: Optional[TraceContext] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Serve one operation request; ``(http_status, response_body)``.

        *context* is the request's :class:`repro.obs.TraceContext` —
        the HTTP layer mints one per ``POST`` (adopting an
        ``X-Repro-Request-Id`` header when the client sent one); direct
        callers may omit it and a fresh context is minted here.  The
        whole request runs under that ambient context and a
        ``service.<op>`` span; the worker's span subtree (shipped back
        as the response's ``trace`` state) is stitched under it, and
        the combined tree is persisted with the request's registry row.
        """
        if context is None:
            context = mint_context()
        tracer = Tracer(provenance=False)
        with context_scope(context):
            with tracer.span(
                f"service.{op}", request_id=context.request_id
            ) as span:
                return self._serve(op, body, context, tracer, span)

    def _serve(
        self,
        op: str,
        body: Any,
        context: TraceContext,
        tracer: Tracer,
        span,
    ) -> Tuple[int, Dict[str, Any]]:
        """The admission/cache/dispatch pipeline under the service span."""
        started = time.perf_counter()
        if self.pool.draining:
            return self._refuse(op, 503, "draining", "service is draining")
        try:
            request = validate_request(op, body, allow_faults=self.allow_faults)
        except ServiceRequestError as error:
            return self._refuse(op, 400, "invalid", str(error))
        key = request_key(request)
        cached = self._cached_response(key)
        if cached is not None:
            response, layer = cached
            response = dict(response)
            response["cache"] = {"hit": True, "layer": layer}
            self._record(
                op, request, response, started, context, tracer,
                cache_layer=layer,
            )
            return 200, response
        # The cache key is already computed from content digests only,
        # so stamping the request context here can never alias cache
        # entries across requests.
        request["trace"] = context.to_dict()
        try:
            limits = request.get("limits") or {}
            job = self.pool.submit(request, deadline=limits.get("deadline"))
        except PoolSaturated as error:
            return self._refuse(op, 429, "saturated", str(error))
        except PoolDraining as error:
            return self._refuse(op, 503, "draining", str(error))
        response = job.result()
        state = response.pop("trace", None) if isinstance(response, dict) else None
        if state is not None:
            tracer.absorb(
                state, parent_id=span.span_id if span is not None else None
            )
        if not response.get("ok"):
            error = response.get("error", {})
            status = _ERROR_STATUS.get(error.get("kind"), 500)
            self._count(op, status, error_kind=error.get("kind"))
            self._record(
                op, request, response, started, context, tracer, error=error
            )
            return status, {"op": op, "ok": False, "error": error}
        if response.get("exhausted") is None and request.get("fault") is None:
            self.memory.put(key, response)
            if self.disk is not None:
                self.disk.put(key, response)
        response = dict(response)
        response["cache"] = {"hit": False, "layer": None}
        self._record(op, request, response, started, context, tracer)
        return 200, response

    def _cached_response(self, key) -> Optional[Tuple[dict, str]]:
        """The cached response for *key* and the tier that held it."""
        hit, value = self.memory.get(key)
        if hit:
            return value, "memory"
        if self.disk is not None:
            hit, value = self.disk.get(key)
            if hit:
                self.memory.put(key, value)
                return value, "disk"
        return None

    def _refuse(
        self, op: str, status: int, kind: str, message: str
    ) -> Tuple[int, Dict[str, Any]]:
        self._count(op, status, error_kind=kind)
        return status, {
            "op": op,
            "ok": False,
            "error": {"type": "ServiceRefusal", "message": message, "kind": kind},
        }

    # -- accounting -----------------------------------------------------

    def _count(
        self,
        op: str,
        status: int,
        cache_layer: Optional[str] = None,
        error_kind: Optional[str] = None,
    ) -> None:
        with self._metrics_lock:
            self.metrics.inc(f"service_requests_{op}")
            self.metrics.inc(f"service_responses_{status}")
            if cache_layer is not None:
                self.metrics.inc(f"service_cache_hits_{cache_layer}")
            if error_kind is not None:
                self.metrics.inc(f"service_errors_{error_kind}")

    def _record(
        self,
        op: str,
        request: Dict[str, Any],
        response: Dict[str, Any],
        started: float,
        context: Optional[TraceContext] = None,
        tracer: Optional[Tracer] = None,
        cache_layer: Optional[str] = None,
        error: Optional[dict] = None,
    ) -> None:
        """Count the request and emit its :class:`OpRecord`.

        The registry row additionally carries a ``metrics`` JSON
        payload: the stitched request span tree (service span plus the
        absorbed worker subtree) and, when the worker engine profiled
        the chase, the per-dependency profile summary — what ``repro
        runs show`` renders back."""
        status = 200 if error is None else _ERROR_STATUS.get(
            error.get("kind"), 500
        )
        if error is None:
            self._count(op, status, cache_layer=cache_layer)
        meta = response.get("meta") or {}
        now = time.perf_counter()
        record = OpRecord(
            op=f"serve.{op}",
            mapping_digest=request.get("mapping_digest", ""),
            instance_digest=request.get("instance_digest", ""),
            wall_time=now - started,
            cache_hit=cache_layer is not None
            or bool(meta.get("engine_cache_hit")),
            rounds=meta.get("rounds", 0),
            steps=meta.get("steps", 0),
            facts=response.get("facts", 0),
            nulls=response.get("nulls", 0),
            branches=meta.get("branches", 0),
            triggers=meta.get("triggers", 0),
            exhausted=response.get("exhausted"),
            error=error.get("type") if error else None,
            kills=1 if (error or {}).get("kind") == "killed" else 0,
            trace_id=context.trace_id if context is not None else "",
            request_id=context.request_id if context is not None else "",
        )
        if self.sink is not None:
            self.sink.record(record)
        if self.registry is not None:
            metrics: Optional[dict] = None
            payload: Dict[str, Any] = {}
            if tracer is not None and tracer.spans:
                spans = spans_payload(tracer)
                # The service span is still open while its row is
                # written; close it at "now" so the stored tree has a
                # duration instead of a null end.
                for stored in spans:
                    if stored["end"] is None:
                        stored["end"] = now
                payload["spans"] = spans
            if meta.get("profile"):
                payload["profile"] = meta["profile"]
            metrics = payload or None
            try:
                self.registry.record(record, metrics=metrics)
            except Exception:  # pragma: no cover - registry is best-effort
                pass

    # -- introspection --------------------------------------------------

    def metrics_text(self) -> str:
        """The OpenMetrics exposition for ``GET /metrics``."""
        if self.sink is not None:
            return self.sink.render()
        with self._metrics_lock:
            return self.metrics.to_openmetrics()

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``: pool + cache health, 503 while draining."""
        pool = self.pool.stats()
        body = {
            "status": "draining" if pool["draining"] else "ok",
            "uptime": time.time() - self.started,
            "pool": pool,
            "cache": {
                "memory": self.memory.stats.as_dict(),
                "disk": (
                    self.disk.stats.as_dict()
                    if self.disk is not None
                    else None
                ),
            },
        }
        return (503 if pool["draining"] else 200), body

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: delegate to the pool, then flush sinks."""
        drained = self.pool.drain(timeout=timeout)
        if self.sink is not None:
            self.sink.close()
        return drained


class _Handler(BaseHTTPRequestHandler):
    """Wire adapter: routes HTTP to the server's :class:`ExchangeService`."""

    #: Maximum accepted request body, bytes (a mapping is text; 16 MiB
    #: is generous and bounds memory per connection thread).
    MAX_BODY = 16 * 1024 * 1024

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExchangeService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Suppress per-request stderr chatter; metrics cover this."""

    def _reply(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Route ``GET``: ``/healthz``, ``/metrics``, else 404."""
        if self.path == "/healthz":
            status, body = self.service.health()
            self._reply(status, body)
        elif self.path == "/metrics":
            self._reply_text(
                200,
                self.service.metrics_text(),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
            )
        else:
            self._reply(
                404,
                {
                    "ok": False,
                    "error": {
                        "type": "NotFound",
                        "message": f"no route {self.path!r}",
                        "kind": "invalid",
                    },
                },
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Route ``POST /v1/<op>``; anything else is 404.

        Every ``POST`` gets a :class:`repro.obs.TraceContext`: an
        ``X-Repro-Request-Id`` request header is adopted as the request
        id (so clients can correlate their own ids through logs,
        registry rows, and span trees), otherwise one is minted.  The
        effective id is echoed back as the same header on the reply —
        on every status, including refusals."""
        requested_id = (self.headers.get("X-Repro-Request-Id") or "").strip()
        context = mint_context(request_id=requested_id or None)
        echo = {"X-Repro-Request-Id": context.request_id}
        parts = self.path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "v1" or parts[1] not in SERVICE_OPS:
            self._reply(
                404,
                {
                    "ok": False,
                    "error": {
                        "type": "NotFound",
                        "message": f"no route {self.path!r}; operations: "
                        + ", ".join(f"/v1/{op}" for op in SERVICE_OPS),
                        "kind": "invalid",
                    },
                },
                headers=echo,
            )
            return
        op = parts[1]
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.MAX_BODY:
            self._reply(
                400,
                {
                    "op": op,
                    "ok": False,
                    "error": {
                        "type": "ServiceRequestError",
                        "message": f"body too large ({length} bytes)",
                        "kind": "invalid",
                    },
                },
                headers=echo,
            )
            return
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, OSError) as error:
            self._reply(
                400,
                {
                    "op": op,
                    "ok": False,
                    "error": {
                        "type": "ServiceRequestError",
                        "message": f"request body is not valid JSON: {error}",
                        "kind": "invalid",
                    },
                },
                headers=echo,
            )
            return
        try:
            status, payload = self.service.handle(op, body, context=context)
        except Exception as error:  # pragma: no cover - belt and braces
            status, payload = 500, {"op": op, "ok": False,
                                    "error": error_payload(error)}
        self._reply(status, payload, headers=echo)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying its :class:`ExchangeService`."""

    daemon_threads = True

    def __init__(self, address, service: ExchangeService) -> None:
        """Bind *address* and attach *service* for the handlers."""
        super().__init__(address, _Handler)
        self.service = service


def serve(
    service: ExchangeService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    install_signals: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT; the process exit code.

    Prints (via *ready*, a callable receiving the bound ``(host,
    port)``) once listening — ``repro serve`` uses this to announce the
    actual port when started with ``--port 0``.  SIGTERM triggers a
    graceful drain (in-flight requests finish, workers exit) and a
    clean 0 exit; SIGINT the same but exits 130, matching the CLI's
    interrupt convention.
    """
    server = ServiceServer((host, port), service)
    exit_code = {"value": 0}
    draining = threading.Event()

    def _shutdown(code: int) -> None:
        if draining.is_set():
            return
        draining.set()
        exit_code["value"] = code

        def _run() -> None:
            service.drain()
            server.shutdown()

        threading.Thread(target=_run, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, lambda signum, frame: _shutdown(0))
        signal.signal(signal.SIGINT, lambda signum, frame: _shutdown(130))
    if ready is not None:
        ready(server.server_address[0], server.server_address[1])
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return exit_code["value"]


__all__ = ["ExchangeService", "ServiceServer", "serve"]
