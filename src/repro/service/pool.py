"""The warm supervised worker pool behind ``repro serve``.

:mod:`repro.engine.supervisor` leases **one fresh process per item** —
correct for batch jobs, ruinous for a service, where every request
would pay interpreter start-up plus a cold engine.  This pool keeps the
supervisor's proven machinery — the lock-free
:class:`~repro.engine.supervisor.HeartbeatCell`, the
:class:`~repro.engine.supervisor._HeartbeatReporter` progress shim, the
raw-byte cooperative-cancel bridge, and the SIGTERM→SIGKILL
:func:`~repro.engine.supervisor._terminate` escalation — but changes
the lifecycle: **N persistent workers, respawned in place**.

* Each worker slot is one long-lived process holding a warm
  :class:`repro.engine.ExchangeEngine` (imports done, caches populated,
  disk tier attached).  Tasks stream to it over a duplex pipe.
* One manager thread per slot pulls requests from a shared queue,
  ships them to its worker, and supervises: at the request's deadline
  it flips the shared cancel byte (cooperative cancel); if the
  worker's heartbeat then stays stale for a full grace period, the
  worker is terminated and the **slot respawned in place** — a fresh
  process with a fresh pipe, heartbeat cell, and cancel flag — so one
  wedged request costs one worker restart, never the pool.
* Other requests are unaffected throughout: each slot supervises only
  its own worker, and the shared queue keeps feeding the healthy
  slots.

Admission control is the caller's (:mod:`repro.service.http`):
:meth:`WarmPool.submit` raises :class:`PoolSaturated` when the pending
backlog is full (HTTP 429) and :class:`PoolDraining` once a drain has
begun (HTTP 503).  :meth:`WarmPool.drain` is the graceful-SIGTERM path:
intake stops, queued and in-flight requests finish, then every worker
receives an exit message and is joined.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReproError, WorkerKilled
from ..limits import Exhausted
from ..limits.budget import CancelToken, set_cancel_token
from ..obs.progress import set_reporter
from ..engine.supervisor import (
    SUPERVISOR_TICK,
    HeartbeatCell,
    _HeartbeatReporter,
    _terminate,
)
from .ops import error_payload, execute_op


class PoolSaturated(ReproError):
    """The pending backlog is full; the caller should shed load (429)."""


class PoolDraining(ReproError):
    """The pool is draining (SIGTERM); no new work is admitted (503)."""


def _bridge_flag(flag, token: CancelToken, stop: threading.Event) -> None:
    """Watcher-thread body: mirror the shared cancel byte into *token*.

    The supervisor's :func:`~repro.engine.supervisor._bridge_cancel`
    runs once per process; a warm worker needs one watcher per *task*
    (each task gets a fresh token), so this variant also stops when the
    task finishes — otherwise a finished task's watcher could cancel
    the next task off a stale flag read.
    """
    while not stop.is_set() and not token.cancelled:
        if flag.value:
            token.cancel("pool-supervisor")
            return
        time.sleep(0.02)


def _build_worker_engine(config: Dict[str, Any]):
    """Construct the per-worker warm engine from the picklable config."""
    from ..engine import ExchangeEngine
    from .diskcache import DiskCache

    cache_dir = config.get("cache_dir")
    return ExchangeEngine(
        cache_size=config.get("cache_size", 512),
        store=config.get("store", "memory"),
        sql_chase=config.get("sql_chase", False),
        sql_jobs=config.get("sql_jobs", 1),
        disk_cache=DiskCache(cache_dir) if cache_dir else None,
    )


def _worker_main(conn, cell: HeartbeatCell, cancel_flag, config) -> None:
    """One warm worker process: build the engine once, then serve tasks.

    Protocol (parent → worker): ``("task", task_id, request)`` or
    ``("exit",)``.  Worker → parent: ``("ok", task_id, response)`` or
    ``("error", task_id, payload)`` — exactly one reply per task, with
    unpicklable results degraded to a structured error rather than a
    silent hang.  Runs at module scope so it pickles by reference under
    spawn-based contexts.
    """
    engine = _build_worker_engine(config)
    set_reporter(_HeartbeatReporter(cell))
    cell.beat()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not message or message[0] == "exit":
            break
        _, task_id, request = message
        token = CancelToken()
        set_cancel_token(token)
        stop = threading.Event()
        watcher = threading.Thread(
            target=_bridge_flag, args=(cancel_flag, token, stop), daemon=True
        )
        watcher.start()
        try:
            reply = ("ok", task_id, execute_op(engine, request))
        except BaseException as error:
            reply = ("error", task_id, error_payload(error))
        finally:
            stop.set()
        cell.beat()
        try:
            conn.send(reply)
        except Exception:
            try:
                conn.send(
                    (
                        "error",
                        task_id,
                        {
                            "type": "RuntimeError",
                            "message": "worker reply unpicklable",
                            "kind": "internal",
                        },
                    )
                )
            except Exception:  # pragma: no cover - parent is gone
                break
    conn.close()


class PoolJob:
    """A future-lite: one submitted request and its eventual outcome."""

    def __init__(self, task_id: int, request: Dict[str, Any]) -> None:
        """A pending job for *request*, resolved by a slot manager."""
        self.task_id = task_id
        self.request = request
        self.killed = False
        self._done = threading.Event()
        self._value: Optional[Dict[str, Any]] = None
        self._error: Optional[Dict[str, Any]] = None

    def _resolve(self, value: Optional[dict], error: Optional[dict]) -> None:
        self._value = value
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block for the outcome and return it as a dict.

        Returns the response dict, or a structured error dict
        (``{"type", "message", "kind"}``) on failure.

        Raises ``TimeoutError`` only when *timeout* elapses with the job
        still unresolved — worker failures resolve, they don't raise.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"pool job {self.task_id} unresolved after {timeout}s"
            )
        if self._error is not None:
            return {"ok": False, "error": self._error}
        return self._value


@dataclass
class _Slot:
    """One worker slot: the live process and its supervision channels."""

    index: int
    process: Any = None
    conn: Any = None
    cell: Optional[HeartbeatCell] = None
    cancel_flag: Any = None
    tasks: int = 0


@dataclass
class _PoolStats:
    """Pool-lifetime counters (reported by ``/healthz``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    kills: int = 0
    respawns: int = 0
    rejected: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def bump(self, **deltas: int) -> None:
        with self.lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)


_SHUTDOWN = object()


class WarmPool:
    """N persistent supervised workers fed from one shared queue.

    Parameters
    ----------
    workers:
        Worker process count (≥ 1).  Each holds a warm engine.
    engine_config:
        Picklable dict shipped to every worker:
        ``cache_dir``/``cache_size``/``store``/``sql_chase`` (see
        :func:`_build_worker_engine`).
    deadline:
        Default per-request cooperative deadline, seconds (a request's
        own ``limits.deadline`` wins when smaller is desired — the pool
        uses the *pool* deadline for escalation regardless, since a
        request that lies about its budget is exactly the one the
        supervisor exists for).
    grace:
        Heartbeat staleness past the deadline that triggers the kill,
        exactly as in :mod:`repro.engine.supervisor`.
    max_pending:
        Admission bound on queued-plus-running requests; ``None``
        defaults to ``4 × workers``.
    context:
        A ``multiprocessing`` context (tests pass one; default
        :func:`multiprocessing.get_context`).
    """

    def __init__(
        self,
        workers: int = 2,
        engine_config: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = 30.0,
        grace: float = 2.0,
        max_pending: Optional[int] = None,
        context=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.engine_config = dict(engine_config or {})
        self.deadline = deadline
        self.grace = grace
        self.max_pending = max_pending if max_pending is not None else 4 * workers
        self.ctx = context if context is not None else multiprocessing.get_context()
        self.stats_counters = _PoolStats()
        self._queue: "queue.Queue" = queue.Queue()
        self._task_ids = itertools.count(1)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._draining = threading.Event()
        self._slots = [_Slot(index=i) for i in range(workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._managers = [
            threading.Thread(
                target=self._manage, args=(slot,), daemon=True,
                name=f"pool-manager-{slot.index}",
            )
            for slot in self._slots
        ]
        for manager in self._managers:
            manager.start()

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        """(Re)start *slot*'s worker: fresh process, pipe, cell, flag."""
        slot.cell = HeartbeatCell(self.ctx)
        slot.cancel_flag = self.ctx.RawValue("b", 0)
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        slot.process = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, slot.cell, slot.cancel_flag, self.engine_config),
            daemon=True,
        )
        slot.process.start()
        child_conn.close()
        slot.conn = parent_conn

    def _respawn(self, slot: _Slot) -> None:
        """Respawn a slot in place after a kill or a worker crash."""
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._spawn(slot)
        self.stats_counters.bump(respawns=1)

    # -- submission ------------------------------------------------------

    def submit(
        self, request: Dict[str, Any], deadline: Optional[float] = None
    ) -> PoolJob:
        """Queue one normalized request; returns its :class:`PoolJob`.

        Raises :class:`PoolDraining` once :meth:`drain` has begun and
        :class:`PoolSaturated` when admitting the request would push the
        pending count past ``max_pending``.
        """
        if self._draining.is_set():
            self.stats_counters.bump(rejected=1)
            raise PoolDraining("pool is draining; not accepting work")
        with self._pending_lock:
            if self._pending >= self.max_pending:
                self.stats_counters.bump(rejected=1)
                raise PoolSaturated(
                    f"{self._pending} requests pending (limit {self.max_pending})"
                )
            self._pending += 1
        job = PoolJob(next(self._task_ids), request)
        job.deadline = deadline if deadline is not None else self.deadline
        self.stats_counters.bump(submitted=1)
        self._queue.put(job)
        return job

    def _finish(self, job: PoolJob, value=None, error=None) -> None:
        with self._pending_lock:
            self._pending -= 1
        self.stats_counters.bump(
            completed=1 if error is None else 0,
            failed=0 if error is None else 1,
        )
        job._resolve(value, error)

    # -- the slot manager ------------------------------------------------

    def _manage(self, slot: _Slot) -> None:
        """Manager-thread body: feed and supervise one worker slot."""
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                self._exit_worker(slot)
                return
            self._run_job(slot, job)

    def _run_job(self, slot: _Slot, job: PoolJob) -> None:
        if slot.process is None or not slot.process.is_alive():
            self._respawn(slot)
        slot.cancel_flag.value = 0
        try:
            slot.conn.send(("task", job.task_id, job.request))
        except (OSError, ValueError) as error:
            self._respawn(slot)
            self._finish(job, error=error_payload(error))
            return
        slot.tasks += 1
        started = time.monotonic()
        soft_at = None if job.deadline is None else started + job.deadline
        soft_sent = False
        while True:
            if slot.conn.poll(SUPERVISOR_TICK):
                try:
                    status, task_id, payload = slot.conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (crash, OOM kill).
                    self._kill_slot(slot, job, reason="worker exited")
                    return
                if task_id != job.task_id:  # pragma: no cover - stale reply
                    continue
                if status == "ok":
                    self._finish(job, value=payload)
                else:
                    self._finish(job, error=payload)
                return
            now = time.monotonic()
            if soft_at is not None and now >= soft_at and not soft_sent:
                slot.cancel_flag.value = 1
                soft_sent = True
            if soft_sent:
                quiet_since = max(slot.cell.last_beat, soft_at)
                if now - quiet_since >= self.grace:
                    self._kill_slot(slot, job, reason="heartbeat stale")
                    return

    def _kill_slot(self, slot: _Slot, job: PoolJob, reason: str) -> None:
        """Terminate the slot's worker, respawn in place, fail the job."""
        pid = slot.process.pid if slot.process is not None else None
        gauges = slot.cell.gauges() if slot.cell is not None else {}
        if slot.process is not None and slot.process.is_alive():
            _terminate(slot.process)
            self.stats_counters.bump(kills=1)
        self._respawn(slot)
        job.killed = True
        trace = job.request.get("trace") or {}
        diagnosis = Exhausted(
            resource="killed",
            where="service.pool",
            limit=self.grace,
            used=reason,
            rounds=gauges.get("rounds", 0),
            steps=gauges.get("steps", 0),
            trace_id=trace.get("trace_id", ""),
            request_id=trace.get("request_id", ""),
        )
        self._finish(
            job,
            error=error_payload(
                WorkerKilled(item=job.task_id, pid=pid, diagnosis=diagnosis)
            ),
        )

    def _exit_worker(self, slot: _Slot) -> None:
        """Politely stop one worker (drain path), escalating if ignored."""
        try:
            slot.conn.send(("exit",))
        except (OSError, ValueError):
            pass
        if slot.process is not None:
            slot.process.join(2.0)
            if slot.process.is_alive():
                _terminate(slot.process)
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- lifecycle -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Has a drain begun?  (New submissions are rejected once true.)"""
        return self._draining.is_set()

    def pending(self) -> int:
        """Requests admitted but not yet resolved."""
        with self._pending_lock:
            return self._pending

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown of the pool.

        Stops intake, finishes queued and in-flight work, then exits
        every worker.  Returns ``True`` when every manager joined
        within *timeout* (``None`` = wait forever).
        """
        if not self._draining.is_set():
            self._draining.set()
            for _ in self._managers:
                self._queue.put(_SHUTDOWN)
        deadline = None if timeout is None else time.monotonic() + timeout
        for manager in self._managers:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            manager.join(remaining)
        return all(not manager.is_alive() for manager in self._managers)

    def stats(self) -> Dict[str, Any]:
        """A snapshot of pool health for ``/healthz`` and tests."""
        counters = self.stats_counters
        with counters.lock:
            snapshot = {
                "workers": self.workers,
                "pending": self._pending,
                "draining": self.draining,
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "kills": counters.kills,
                "respawns": counters.respawns,
                "rejected": counters.rejected,
                "worker_pids": [
                    slot.process.pid
                    for slot in self._slots
                    if slot.process is not None
                ],
                "worker_tasks": [slot.tasks for slot in self._slots],
            }
        return snapshot


def pool_available() -> bool:
    """Can this host run the warm pool?  (Mirrors the supervisor gate.)"""
    if os.environ.get("REPRO_NO_SUPERVISOR", "").strip() in ("1", "true", "yes"):
        return False
    try:
        multiprocessing.get_context()
        return True
    except Exception:  # pragma: no cover - exotic hosts
        return False


__all__ = [
    "PoolDraining",
    "PoolJob",
    "PoolSaturated",
    "WarmPool",
    "pool_available",
]
