"""Request validation and worker-side execution for ``repro serve``.

The HTTP layer (:mod:`repro.service.http`) and the warm worker pool
(:mod:`repro.service.pool`) both stay protocol-dumb; this module owns
the service's operation semantics:

* :func:`validate_request` parses and normalizes one JSON request body
  **server-side** — mappings, instances, queries, and limits are parsed
  up front so malformed input fails fast with a 400 instead of
  occupying a pool worker, and the content digests computed here become
  the request's cache identity;
* :func:`request_key` turns a normalized request into the
  content-addressed key the response caches use.  Limits are
  deliberately excluded — a request that *completes* under a budget
  produced the same result any budget would (chase determinism), and
  partial or failed responses are never cached;
* :func:`execute_op` runs a normalized request against a (warm,
  worker-resident) :class:`repro.engine.ExchangeEngine` and renders the
  result as a JSON-able response dict, including the work counters the
  parent needs to emit an :class:`repro.obs.OpRecord`.

The optional ``"fault"`` request field reuses the deterministic fault
plans of :mod:`repro.limits.faults` (``"hang"``, ``"crash"``, ...) and
is honored only when the server was started with ``--allow-faults`` —
it exists so tests and CI can wedge a worker on demand and watch the
pool supervisor kill and respawn it.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..instance import Instance
from ..limits import Limits
from ..limits.faults import Fault, trip
from ..mappings.schema_mapping import SchemaMapping
from ..obs.context import TraceContext, context_scope
from ..obs.tracer import Tracer, tracing
from ..parsing.parser import parse_query

#: The operations the service exposes under ``POST /v1/<op>``.
SERVICE_OPS = ("chase", "reverse", "audit", "answer")

#: ``Limits`` fields a request body may set (admission-control surface).
_LIMIT_FIELDS = (
    "deadline", "max_rounds", "max_facts", "max_nulls", "max_branches"
)


class ServiceRequestError(ReproError):
    """A request body failed validation (the HTTP layer's 400)."""


def _require_text(body: Dict[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value.strip():
        raise ServiceRequestError(f"missing or empty field {field!r}")
    return value


def _parse_mapping(body: Dict[str, Any], field: str) -> SchemaMapping:
    text = _require_text(body, field)
    try:
        return SchemaMapping.from_text(text)
    except Exception as error:
        raise ServiceRequestError(f"cannot parse {field!r}: {error}")


def _parse_instance(body: Dict[str, Any], field: str) -> Instance:
    text = _require_text(body, field)
    try:
        return Instance.parse(text)
    except Exception as error:
        raise ServiceRequestError(f"cannot parse {field!r}: {error}")


def _parse_limits(body: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The request's ``limits`` object, validated, as plain values."""
    raw = body.get("limits")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ServiceRequestError("'limits' must be an object")
    unknown = set(raw) - set(_LIMIT_FIELDS)
    if unknown:
        raise ServiceRequestError(
            f"unknown limits fields: {sorted(unknown)}"
        )
    values = {}
    for name in _LIMIT_FIELDS:
        value = raw.get(name)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or value <= 0:
            raise ServiceRequestError(f"limits.{name} must be a positive number")
        values[name] = value
    try:
        Limits(**values)  # validation only; workers rebuild from values
    except Exception as error:
        raise ServiceRequestError(f"invalid limits: {error}")
    return values or None


def _parse_fault(body: Dict[str, Any], allow_faults: bool) -> Optional[dict]:
    """The test-only ``fault`` field: ``{"kind": ..., "seconds": ...}``."""
    raw = body.get("fault")
    if raw is None:
        return None
    if not allow_faults:
        raise ServiceRequestError(
            "fault injection is disabled (start the server with --allow-faults)"
        )
    if isinstance(raw, str):
        raw = {"kind": raw}
    if not isinstance(raw, dict) or "kind" not in raw:
        raise ServiceRequestError("'fault' must be a kind string or object")
    try:
        Fault(
            kind=raw["kind"], item=0, seconds=float(raw.get("seconds", 0.0))
        )
    except Exception as error:
        raise ServiceRequestError(f"invalid fault: {error}")
    return {"kind": raw["kind"], "seconds": float(raw.get("seconds", 0.0))}


def _positive_int(body: Dict[str, Any], field: str, default: int) -> int:
    value = body.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ServiceRequestError(f"{field!r} must be a positive integer")
    return value


def validate_request(
    op: str, body: Dict[str, Any], allow_faults: bool = False
) -> Dict[str, Any]:
    """Parse one request body into a normalized, picklable request dict.

    Raises :class:`ServiceRequestError` on any malformed field; on
    success the returned dict carries the raw texts (workers re-parse —
    cheap against a warm interpreter), the server-computed content
    digests, and the normalized options.
    """
    if op not in SERVICE_OPS:
        raise ServiceRequestError(
            f"unknown operation {op!r}; expected one of {SERVICE_OPS}"
        )
    if not isinstance(body, dict):
        raise ServiceRequestError("request body must be a JSON object")
    mapping = _parse_mapping(body, "mapping")
    request: Dict[str, Any] = {
        "op": op,
        "mapping": _require_text(body, "mapping"),
        "mapping_digest": mapping.digest(),
        "limits": _parse_limits(body),
        "fault": _parse_fault(body, allow_faults),
    }
    if op in ("chase", "reverse", "answer"):
        instance = _parse_instance(body, "instance")
        request["instance"] = body["instance"]
        request["instance_digest"] = instance.digest()
    if op == "chase":
        variant = body.get("variant", "restricted")
        if variant not in ("restricted", "oblivious"):
            raise ServiceRequestError(
                "'variant' must be 'restricted' or 'oblivious'"
            )
        request["variant"] = variant
    elif op == "reverse":
        request["max_nulls"] = _positive_int(body, "max_nulls", 8)
        request["take_core"] = bool(body.get("take_core", True))
    elif op == "audit":
        if body.get("reverse") is not None:
            reverse = _parse_mapping(body, "reverse")
            request["reverse"] = body["reverse"]
            request["reverse_digest"] = reverse.digest()
        else:
            request["reverse"] = None
            request["reverse_digest"] = ""
    elif op == "answer":
        if body.get("recovery") is not None:
            recovery = _parse_mapping(body, "recovery")
            request["recovery"] = body["recovery"]
            request["recovery_digest"] = recovery.digest()
        else:
            request["recovery"] = None
            request["recovery_digest"] = ""
        query_text = _require_text(body, "query")
        try:
            parse_query(query_text)
        except Exception as error:
            raise ServiceRequestError(f"cannot parse 'query': {error}")
        request["query"] = query_text
        request["max_nulls"] = _positive_int(body, "max_nulls", 8)
    return request


def request_key(request: Dict[str, Any]) -> Tuple:
    """The content-addressed cache key of a normalized request.

    Keys are built from digests and result-shaping options only:
    limits and faults never appear (completed results are
    limit-independent; faulted/failed responses are never cached).
    """
    op = request["op"]
    if op == "chase":
        return (
            "service", "chase",
            request["mapping_digest"], request["instance_digest"],
            request["variant"],
        )
    if op == "reverse":
        return (
            "service", "reverse",
            request["mapping_digest"], request["instance_digest"],
            request["max_nulls"], request["take_core"],
        )
    if op == "audit":
        return (
            "service", "audit",
            request["mapping_digest"], request["reverse_digest"],
        )
    return (
        "service", "answer",
        request["mapping_digest"], request["recovery_digest"],
        request["instance_digest"], request["query"],
        request["max_nulls"],
    )


def _limits_from_request(request: Dict[str, Any]) -> Optional[Limits]:
    values = request.get("limits")
    if not values:
        return None
    return Limits(on_exhausted="partial", **values)


def _exhausted_tag(exhausted) -> Optional[str]:
    return None if exhausted is None else exhausted.resource


def _verdict(check) -> Dict[str, Any]:
    """One audit verdict as JSON: holds + printable counterexample."""
    if check is None:
        return {"holds": None}
    out: Dict[str, Any] = {"holds": bool(check.holds)}
    counterexample = getattr(check, "counterexample", None)
    if counterexample is not None and not check.holds:
        out["counterexample"] = str(counterexample)
    return out


def execute_op(engine, request: Dict[str, Any]) -> Dict[str, Any]:
    """Run one normalized request on *engine*; a JSON-able response dict.

    Runs inside a pool worker (but is deliberately runnable anywhere —
    tests call it on an in-process engine).  The response's ``meta``
    carries wall time and work counters for the parent's telemetry;
    ``exhausted`` tags budget-truncated partial results, which the
    caller must not cache.

    When the request carries a ``"trace"`` field — the serialized
    :class:`repro.obs.context.TraceContext` the HTTP layer stamps onto
    every admitted request — the operation runs with that context
    restored as the worker's ambient context, under a private
    :class:`repro.obs.Tracer` opening a ``worker.<op>`` root span.  The
    tracer's picklable state ships back as ``response["trace"]`` so the
    parent can stitch the worker's span subtree into the request's
    service span (the caller must pop it before JSON-encoding or
    caching the response).  Without a ``"trace"`` field the operation
    runs exactly as before — direct callers pay nothing.
    """
    op = request["op"]
    fault = request.get("fault")
    if fault is not None:
        trip(Fault(kind=fault["kind"], item=0, seconds=fault["seconds"]))
    mapping = SchemaMapping.from_text(request["mapping"])
    limits = _limits_from_request(request)
    started = time.perf_counter()
    trace = request.get("trace")
    tracer: Optional[Tracer] = None
    with ExitStack() as stack:
        if trace:
            context = TraceContext.from_dict(trace)
            stack.enter_context(context_scope(context))
            tracer = Tracer(provenance=False)
            stack.enter_context(tracing(tracer))
            stack.enter_context(
                tracer.span(f"worker.{op}", pid=os.getpid())
            )
        if op == "chase":
            result = engine.exchange(
                mapping,
                Instance.parse(request["instance"]),
                variant=request["variant"],
                limits=limits,
            )
            response: Dict[str, Any] = {
                "instance": str(result.instance),
                "facts": len(result.instance),
                "nulls": len(result.instance.nulls),
                "exhausted": _exhausted_tag(result.exhausted),
                "meta": {
                    "rounds": result.stats.rounds,
                    "steps": result.stats.steps,
                    "triggers": result.stats.triggers_considered,
                    "engine_cache_hit": result.cached,
                },
            }
        elif op == "reverse":
            result = engine.reverse(
                mapping,
                Instance.parse(request["instance"]),
                max_nulls=request["max_nulls"],
                take_core=request["take_core"],
                limits=limits,
            )
            response = {
                "candidates": [str(c) for c in result.candidates],
                "canonical": str(result.canonical),
                "exhausted": _exhausted_tag(result.exhausted),
                "meta": {
                    "branches": len(result.candidates),
                    "engine_cache_hit": result.cached,
                },
            }
        elif op == "audit":
            reverse = (
                SchemaMapping.from_text(request["reverse"])
                if request.get("reverse")
                else None
            )
            report = engine.audit(mapping, reverse=reverse)
            response = {
                "invertible": _verdict(report.invertible),
                "extended_invertible": _verdict(report.extended_invertible),
                "chase_inverse": _verdict(report.chase_inverse),
                "exhausted": None,
                "meta": {"engine_cache_hit": report.cached},
            }
        else:  # answer
            if request.get("recovery"):
                recovery = SchemaMapping.from_text(request["recovery"])
            else:
                from ..inverses.quasi_inverse import (
                    maximum_extended_recovery_for_full_tgds,
                )

                recovery = maximum_extended_recovery_for_full_tgds(mapping)
            answers = engine.answer(
                mapping,
                recovery,
                parse_query(request["query"]),
                Instance.parse(request["instance"]),
                max_nulls=request["max_nulls"],
            )
            response = {
                "rows": sorted(
                    [[str(value) for value in row] for row in answers]
                ),
                "exhausted": None,
                "meta": {},
            }
        profile = getattr(engine, "last_profile", None)
        if profile is not None:
            response["meta"]["profile"] = profile.to_summary()
    response["op"] = op
    response["ok"] = True
    response["meta"]["wall_time"] = time.perf_counter() - started
    if tracer is not None:
        response["trace"] = tracer.export_state()
    return response


def error_payload(error: BaseException) -> Dict[str, Any]:
    """A structured, picklable JSON rendering of a worker failure."""
    from ..errors import BudgetExhausted, Cancelled, WorkerKilled

    if isinstance(error, WorkerKilled):
        kind = "killed"
    elif isinstance(error, Cancelled):
        kind = "cancelled"
    elif isinstance(error, BudgetExhausted):
        kind = "budget"
    elif isinstance(error, ServiceRequestError):
        kind = "invalid"
    else:
        kind = "internal"
    return {
        "type": type(error).__name__,
        "message": str(error),
        "kind": kind,
    }


__all__ = [
    "SERVICE_OPS",
    "ServiceRequestError",
    "error_payload",
    "execute_op",
    "request_key",
    "validate_request",
]
