"""Disk-backed content-addressed result cache for the service layer.

The engine's LRU caches (:mod:`repro.engine.cache`) die with their
process; this module is the persistence tier underneath them.  Every
entry is keyed by the same content-addressed tuples the engine already
uses — ``("chase", mapping_digest, instance_digest, variant)`` and
friends — so a result computed by any process is reusable by every
later one: the chase is deterministic, which makes the cache
semantically transparent exactly as the in-memory tier is.

Layout and failure model (proven out by the SQLite run registry's
atomic-rename discipline in :mod:`repro.obs.registry`):

* entries live at ``<root>/<hh>/<digest>.rpc`` where ``digest`` is the
  SHA-256 of the key's canonical ``repr`` and ``hh`` its first two hex
  chars (sharding keeps directories small at millions of entries);
* each file is ``b"RPC1" + sha256(payload) + payload`` with ``payload =
  pickle((key_repr, value))`` — magic, checksum, and the embedded key
  are all verified on read, so a truncated, corrupted, or colliding
  file is **never** deserialized into a wrong answer;
* corrupt files are treated as misses and moved into
  ``<root>/quarantine/`` (never silently deleted — they are evidence);
* writes go to a temp file in the same directory and land via
  ``os.replace``, so concurrent writers of the same key are safe: both
  write complete entries, the last rename wins, readers only ever see
  a whole file;
* unpicklable values (e.g. results backed by a live SQLite store) are
  skipped and counted, never half-written.

``gc`` bounds the on-disk footprint by total size and/or entry age,
deleting oldest-first — the same command surface ``repro runs gc``
exposes, so one invocation bounds all persistent state.

The cache directory is chosen by, in precedence order: an explicit
path, the ``REPRO_CACHE_DIR`` environment variable (the off-values
``""``/``off``/``0``/``none``/``disabled`` disable the cache), or the
caller's default (:data:`DEFAULT_CACHE_DIR` for ``repro serve``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

#: Where ``repro serve`` keeps its cache when nothing else is configured.
DEFAULT_CACHE_DIR = ".repro_cache"

#: ``REPRO_CACHE_DIR`` values that disable the disk cache outright.
CACHE_OFF_VALUES = ("", "off", "0", "none", "disabled")

#: Entry file magic: format version 1 of the repro persistent cache.
_MAGIC = b"RPC1"

#: Length of the SHA-256 checksum that follows the magic.
_DIGEST_LEN = 32

#: Entry file suffix (quarantined files keep it, plus a marker).
_SUFFIX = ".rpc"


def resolve_cache_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The effective cache directory, or ``None`` when caching is off.

    *explicit* (a CLI flag) wins; otherwise ``REPRO_CACHE_DIR`` is
    consulted.  Off-values (:data:`CACHE_OFF_VALUES`) disable the cache
    in either position.
    """
    if explicit is not None:
        return None if explicit.strip().lower() in CACHE_OFF_VALUES else explicit
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is None:
        return None
    return None if env.strip().lower() in CACHE_OFF_VALUES else env


@dataclass
class DiskCacheStats:
    """Lifetime counters for one :class:`DiskCache` handle.

    ``quarantined`` counts corrupt entries moved aside on read;
    ``skipped`` counts unpicklable values the cache refused to store;
    ``evictions`` counts entries deleted by :meth:`DiskCache.gc`.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0
    skipped: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for ``/healthz`` and stats)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "skipped": self.skipped,
            "evictions": self.evictions,
        }


@dataclass
class GcReport:
    """What one :meth:`DiskCache.gc` sweep did."""

    scanned: int = 0
    deleted: int = 0
    bytes_freed: int = 0
    bytes_kept: int = 0
    quarantine_cleared: int = 0
    reasons: dict = field(default_factory=dict)

    def render(self) -> str:
        """One human line for the CLI."""
        return (
            f"cache gc: scanned {self.scanned}, deleted {self.deleted} "
            f"({self.bytes_freed} bytes freed, {self.bytes_kept} kept), "
            f"quarantine cleared {self.quarantine_cleared}"
        )


class DiskCache:
    """A content-addressed pickle cache with corruption-tolerant reads.

    API-compatible with the read/write surface of
    :class:`repro.engine.cache.LRUCache` — ``get(key) -> (hit, value)``
    and ``put(key, value)`` — so it can sit behind a
    :class:`repro.engine.cache.TieredCache` without the engine knowing
    disk exists.
    """

    def __init__(self, root: str) -> None:
        """Open (creating if needed) the cache rooted at *root*."""
        self.root = root
        self.stats = DiskCacheStats()
        os.makedirs(root, exist_ok=True)

    # -- addressing -----------------------------------------------------

    @staticmethod
    def _key_repr(key: Hashable) -> str:
        return repr(key)

    def path_for(self, key: Hashable) -> str:
        """The entry file path *key* hashes to (exists or not)."""
        digest = hashlib.sha256(self._key_repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.root, digest[:2], digest + _SUFFIX)

    @property
    def quarantine_dir(self) -> str:
        """Where corrupt entries are moved (created on first use)."""
        return os.path.join(self.root, "quarantine")

    # -- read path ------------------------------------------------------

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Look up *key*: ``(True, value)`` on a verified hit, else miss.

        Every failure mode — missing file, bad magic, truncation,
        checksum mismatch, unpicklable payload, embedded-key mismatch —
        degrades to a miss; files that exist but fail verification are
        quarantined.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.stats.misses += 1
            return False, None
        value, ok = self._decode(blob, self._key_repr(key))
        if not ok:
            self._quarantine(path)
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def _decode(self, blob: bytes, key_repr: str) -> Tuple[Optional[Any], bool]:
        """Verify and unpickle one entry blob; ``(value, ok)``."""
        header = len(_MAGIC) + _DIGEST_LEN
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None, False
        checksum = blob[len(_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != checksum:
            return None, False
        try:
            stored_repr, value = pickle.loads(payload)
        except Exception:
            # A checksum-valid payload that fails to unpickle means the
            # writing process had classes this one lacks; still a miss.
            return None, False
        if stored_repr != key_repr:
            return None, False  # hash collision (or tampering)
        return value, True

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside, keeping it for inspection."""
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            target = os.path.join(
                self.quarantine_dir, os.path.basename(path) + ".bad"
            )
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            # Another reader quarantined it first (or the FS is gone);
            # either way the entry no longer shadows future writes.
            pass

    # -- write path -----------------------------------------------------

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key* atomically; unpicklable values skip.

        Concurrent writers of the same key are safe: each builds a
        complete temp file and the final ``os.replace`` is atomic, so
        the entry is always one writer's whole payload.
        """
        key_repr = self._key_repr(key)
        try:
            payload = pickle.dumps((key_repr, value))
        except Exception:
            self.stats.skipped += 1
            return
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self.path_for(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            descriptor, temp_path = tempfile.mkstemp(
                prefix=".rpc-", dir=directory
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(blob)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.skipped += 1
            return
        self.stats.writes += 1

    # -- maintenance ----------------------------------------------------

    def _entries(self):
        """Every live entry as ``(path, size, mtime)``, quarantine excluded."""
        out = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            if os.path.abspath(dirpath).startswith(
                os.path.abspath(self.quarantine_dir)
            ):
                continue
            for name in filenames:
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                out.append((path, info.st_size, info.st_mtime))
        return out

    def __len__(self) -> int:
        return len(self._entries())

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
    ) -> GcReport:
        """Bound the cache by age and total size.

        Drops entries past *max_age* (seconds), then deletes
        oldest-first until total size fits *max_bytes*.

        Quarantined files are always cleared — they have served their
        diagnostic purpose by the time anyone runs a gc.  With neither
        budget given only the quarantine is swept.
        """
        report = GcReport()
        clock = time.time() if now is None else now
        entries = sorted(self._entries(), key=lambda e: e[2])  # oldest first
        report.scanned = len(entries)
        kept = []
        for path, size, mtime in entries:
            if max_age is not None and clock - mtime > max_age:
                if self._delete(path):
                    report.deleted += 1
                    report.bytes_freed += size
                    report.reasons["age"] = report.reasons.get("age", 0) + 1
                continue
            kept.append((path, size, mtime))
        if max_bytes is not None:
            total = sum(size for _, size, _ in kept)
            survivors = []
            for path, size, mtime in kept:  # oldest first: evict from the front
                if total > max_bytes:
                    if self._delete(path):
                        report.deleted += 1
                        report.bytes_freed += size
                        report.reasons["size"] = (
                            report.reasons.get("size", 0) + 1
                        )
                        total -= size
                    continue
                survivors.append((path, size, mtime))
            kept = survivors
        report.bytes_kept = sum(size for _, size, _ in kept)
        report.quarantine_cleared = self._clear_quarantine()
        self.stats.evictions += report.deleted
        return report

    def _delete(self, path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def _clear_quarantine(self) -> int:
        cleared = 0
        try:
            names = os.listdir(self.quarantine_dir)
        except OSError:
            return 0
        for name in names:
            if self._delete(os.path.join(self.quarantine_dir, name)):
                cleared += 1
        return cleared

    def clear(self) -> None:
        """Delete every entry (quarantine included); counters are kept."""
        for path, _, _ in self._entries():
            self._delete(path)
        self._clear_quarantine()


__all__ = [
    "CACHE_OFF_VALUES",
    "DEFAULT_CACHE_DIR",
    "DiskCache",
    "DiskCacheStats",
    "GcReport",
    "resolve_cache_dir",
]
