"""Text syntax for dependencies, queries, and instances."""

from .parser import parse_dependencies, parse_dependency, parse_query

__all__ = ["parse_dependencies", "parse_dependency", "parse_query"]
