"""Tokenizer for the dependency/query syntax.

Token kinds::

    IDENT    P, Q', emp_dept, x1     (relations and variables)
    NUMBER   0, 42                   (integer constants)
    STRING   "alice"                 (string constants)
    ARROW    ->
    NEQ      !=
    AND      &
    OR       |
    LPAREN   (      RPAREN )
    COMMA    ,      DOT    .
    TURNSTILE :-
    EXISTS   EXISTS (case-insensitive keyword)

Comments run from ``--`` or ``#`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Token:
    """One lexeme: its kind tag, raw text, and source offset."""

    kind: str
    text: str
    position: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.position}"


class LexError(ValueError):
    """Raised on an unrecognized character."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>(\#|--)[^\n]*)
  | (?P<TURNSTILE>:-)
  | (?P<ARROW>->)
  | (?P<NEQ>!=)
  | (?P<AND>&)
  | (?P<OR>\|)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<SEMI>;)
  | (?P<NUMBER>\d+)
  | (?P<STRING>"[^"]*")
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*, raising :class:`LexError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            snippet = text[pos : pos + 10]
            raise LexError(f"unexpected character at position {pos}: {snippet!r}")
        kind = m.lastgroup
        assert kind is not None
        value = m.group()
        pos = m.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "IDENT" and value.upper() == "EXISTS":
            kind = "EXISTS"
        tokens.append(Token(kind, value, m.start()))
    tokens.append(Token("EOF", "", len(text)))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        """Wrap a token list ending in the EOF sentinel."""
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token:
        """The next token, without consuming it."""
        return self._tokens[self._index]

    def next(self) -> Token:
        """Consume and return the next token (EOF is sticky)."""
        tok = self._tokens[self._index]
        if tok.kind != "EOF":
            self._index += 1
        return tok

    def expect(self, kind: str) -> Token:
        """Consume a token of *kind* or raise :class:`LexError`."""
        tok = self.peek()
        if tok.kind != kind:
            raise LexError(f"expected {kind}, found {tok}")
        return self.next()

    def accept(self, kind: str) -> bool:
        """Consume the next token if it is of *kind*; report whether."""
        if self.peek().kind == kind:
            self.next()
            return True
        return False

    def at(self, *kinds: str) -> bool:
        """True when the next token is one of *kinds*."""
        return self.peek().kind in kinds

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._index :])
