"""Recursive-descent parser for dependencies and conjunctive queries.

Grammar (informally)::

    dependency  :=  premise '->' disjunction
    premise     :=  conjunct ('&' conjunct)*
    conjunct    :=  atom | inequality | 'Constant' '(' term ')'
    inequality  :=  term '!=' term
    disjunction :=  disjunct ('|' disjunct)*
    disjunct    :=  ['EXISTS' var (',' var)* '.'] atoms
                 |  '(' ['EXISTS' ...] atoms ')'
    atoms       :=  atom ('&' atom)*
    atom        :=  IDENT '(' term (',' term)* ')'
    term        :=  IDENT            -- a variable
                 |  NUMBER           -- an integer constant
                 |  STRING           -- a string constant

    query       :=  IDENT '(' [var (',' var)*] ')' ':-' atoms

Examples::

    P(x, y, z) -> Q(x, y) & R(y, z)
    P(x, y) -> EXISTS z . Q(x, z) & Q(z, y)
    P'(x, y) & x != y -> P(x, y)
    P'(x, x) -> T(x) | P(x, x)
    R(x, y) & Constant(x) -> P(x)
    q(x) :- P(x, y) & Q(y, x)

``EXISTS`` annotations are optional and checked for consistency: the
declared variables must be exactly the disjunct's variables that do not
occur in the premise.
"""

from __future__ import annotations

from typing import List, Tuple

from ..logic.atoms import Atom
from ..logic.dependencies import Dependency, DisjunctiveTgd, Tgd
from ..logic.guards import ConstantGuard, Guard, Inequality
from ..logic.queries import ConjunctiveQuery
from ..terms import Const, Term, Var
from .lexer import LexError, TokenStream, tokenize


class ParseError(ValueError):
    """Raised on a syntactically invalid dependency or query."""


def _parse_term(stream: TokenStream) -> Term:
    tok = stream.peek()
    if tok.kind == "IDENT":
        stream.next()
        return Var(tok.text)
    if tok.kind == "NUMBER":
        stream.next()
        return Const(int(tok.text))
    if tok.kind == "STRING":
        stream.next()
        return Const(tok.text[1:-1])
    raise ParseError(f"expected a term, found {tok}")


def _parse_atom(stream: TokenStream, name: str) -> Atom:
    stream.expect("LPAREN")
    terms: List[Term] = []
    if not stream.at("RPAREN"):
        terms.append(_parse_term(stream))
        while stream.accept("COMMA"):
            terms.append(_parse_term(stream))
    stream.expect("RPAREN")
    return Atom(name, tuple(terms))


def _parse_premise(stream: TokenStream) -> Tuple[List[Atom], List[Guard]]:
    atoms: List[Atom] = []
    guards: List[Guard] = []
    while True:
        tok = stream.peek()
        if tok.kind in ("IDENT", "NUMBER", "STRING"):
            # Either an atom, a Constant guard, or an inequality.
            if tok.kind == "IDENT":
                name = stream.next().text
                if stream.at("LPAREN"):
                    if name == "Constant":
                        stream.expect("LPAREN")
                        term = _parse_term(stream)
                        stream.expect("RPAREN")
                        guards.append(ConstantGuard(term))
                    else:
                        atoms.append(_parse_atom(stream, name))
                elif stream.at("NEQ"):
                    stream.expect("NEQ")
                    right = _parse_term(stream)
                    guards.append(Inequality(Var(name), right))
                else:
                    raise ParseError(f"dangling identifier {name!r} in premise")
            else:
                left = _parse_term(stream)
                stream.expect("NEQ")
                right = _parse_term(stream)
                guards.append(Inequality(left, right))
        else:
            raise ParseError(f"expected premise conjunct, found {tok}")
        if not stream.accept("AND"):
            break
    return atoms, guards


def _parse_disjunct(stream: TokenStream) -> Tuple[Tuple[Atom, ...], Tuple[Var, ...]]:
    """Parse one disjunct; return its atoms and declared existentials."""
    parenthesized = stream.accept("LPAREN")
    declared: List[Var] = []
    if stream.accept("EXISTS"):
        declared.append(Var(stream.expect("IDENT").text))
        while stream.accept("COMMA"):
            declared.append(Var(stream.expect("IDENT").text))
        stream.expect("DOT")
    atoms: List[Atom] = []
    while True:
        name = stream.expect("IDENT").text
        atoms.append(_parse_atom(stream, name))
        if not stream.accept("AND"):
            break
    if parenthesized:
        stream.expect("RPAREN")
    return tuple(atoms), tuple(declared)


def _check_exists(
    premise: List[Atom], atoms: Tuple[Atom, ...], declared: Tuple[Var, ...]
) -> None:
    if not declared:
        return
    premise_vars = {v for a in premise for v in a.variables()}
    actual = {v for a in atoms for v in a.variables()} - premise_vars
    if set(declared) != actual:
        decl = ", ".join(sorted(v.name for v in declared))
        act = ", ".join(sorted(v.name for v in actual))
        raise ParseError(
            f"EXISTS declares [{decl}] but the existential variables are [{act}]"
        )


def parse_dependency(text: str) -> Dependency:
    """Parse one dependency; returns :class:`Tgd` or :class:`DisjunctiveTgd`.

    A dependency with a single disjunct comes back as a plain :class:`Tgd`.
    """
    try:
        stream = TokenStream(tokenize(text))
        premise, guards = _parse_premise(stream)
        stream.expect("ARROW")
        disjuncts: List[Tuple[Atom, ...]] = []
        while True:
            atoms, declared = _parse_disjunct(stream)
            _check_exists(premise, atoms, declared)
            disjuncts.append(atoms)
            if not stream.accept("OR"):
                break
        stream.expect("EOF")
    except LexError as exc:
        raise ParseError(f"in {text!r}: {exc}") from exc
    if len(disjuncts) == 1:
        return Tgd(tuple(premise), disjuncts[0], tuple(guards))
    return DisjunctiveTgd(tuple(premise), tuple(disjuncts), tuple(guards))


def parse_dependencies(text: str) -> List[Dependency]:
    """Parse a newline- or semicolon-separated list of dependencies.

    Blank lines and ``--``/``#`` comments are skipped.
    """
    out: List[Dependency] = []
    for chunk in text.replace(";", "\n").splitlines():
        chunk = chunk.split("--")[0].split("#")[0].strip()
        if chunk:
            out.append(parse_dependency(chunk))
    return out


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query, e.g. ``q(x) :- P(x, y) & Q(y, x)``."""
    try:
        stream = TokenStream(tokenize(text))
        stream.expect("IDENT")  # query name, ignored
        stream.expect("LPAREN")
        head: List[Var] = []
        if not stream.at("RPAREN"):
            head.append(Var(stream.expect("IDENT").text))
            while stream.accept("COMMA"):
                head.append(Var(stream.expect("IDENT").text))
        stream.expect("RPAREN")
        stream.expect("TURNSTILE")
        body: List[Atom] = []
        while True:
            name = stream.expect("IDENT").text
            body.append(_parse_atom(stream, name))
            if not stream.accept("AND"):
                break
        stream.expect("EOF")
    except LexError as exc:
        raise ParseError(f"in {text!r}: {exc}") from exc
    return ConjunctiveQuery(tuple(head), tuple(body))
