"""Relational schemas.

A schema is a finite set of relation symbols, each with a fixed arity
(Section 2 of the paper).  Schemas validate instances and dependencies:
an atom or fact over an unknown relation symbol, or with the wrong arity,
is rejected eagerly instead of producing silently wrong chase results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Tuple


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a fixed arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation symbol needs a non-empty name")
        if self.arity < 0:
            raise ValueError(f"negative arity for relation {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """An immutable collection of relation symbols keyed by name.

    Two schemas are equal when they contain the same symbols.  A schema can
    be built from ``RelationSymbol`` objects or from ``(name, arity)`` pairs.
    """

    def __init__(self, relations: Iterable[RelationSymbol | Tuple[str, int]] = ()) -> None:
        by_name: Dict[str, RelationSymbol] = {}
        for rel in relations:
            if isinstance(rel, tuple):
                rel = RelationSymbol(*rel)
            existing = by_name.get(rel.name)
            if existing is not None and existing != rel:
                raise ValueError(
                    f"conflicting arities for relation {rel.name!r}: "
                    f"{existing.arity} vs {rel.arity}"
                )
            by_name[rel.name] = rel
        self._by_name: Mapping[str, RelationSymbol] = dict(sorted(by_name.items()))

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}; schema has {sorted(self._by_name)}")

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(tuple(self._by_name.values()))

    def __repr__(self) -> str:
        rels = ", ".join(str(rel) for rel in self)
        return f"Schema({rels})"

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)

    def arity(self, name: str) -> int:
        """Return the arity of relation *name* (KeyError if unknown)."""
        return self[name].arity

    def union(self, other: "Schema") -> "Schema":
        """Return the union schema; arities must agree on shared names."""
        return Schema(list(self) + list(other))

    def disjoint_with(self, other: "Schema") -> bool:
        """True when the two schemas share no relation names."""
        return not set(self.names) & set(other.names)

    def replica(self, suffix: str = "^") -> "Schema":
        """Return a replica schema with every name suffixed (Section 2).

        The paper writes the replica of ``S`` as ``Ŝ`` with symbols ``R̂``;
        we suffix names instead.  The replica is used by the (non-extended)
        identity schema mapping.
        """
        return Schema(RelationSymbol(rel.name + suffix, rel.arity) for rel in self)
