"""Shared machinery for SQL-backed fact stores (SQLite, DuckDB).

Both relational backends keep facts out of the Python heap behind the
same layout — a ``_catalog`` mapping relation names to generated table
names, one table per relation with TEXT columns ``c0..c{arity-1}``,
set semantics enforced by a unique constraint over all columns — and
the same injective tagged-value cell encoding (``i:``/``s:``/``n:``).
Everything that is plain portable SQL lives here; the per-dialect
differences (connection construction, DDL idioms, how inserted-row
counts are obtained, reader connections for sharded chase rounds) are
narrow hooks the concrete stores override.

The layout invariants every subclass must preserve, because the SQL
plan compiler (:mod:`repro.store.sqlplan`) compiles against them:

* cells are encoded with :func:`encode_value` (injective, so ``=``,
  ``<>``, and prefix tests on cells are sound value comparisons);
* each relation table exposes a monotonically increasing ``rowid``
  (never reused — the stores never delete), which the semi-naive chase
  uses as its per-relation round watermark;
* ``INSERT OR IGNORE`` against the all-columns unique constraint is
  the deduplication primitive.

The digest is computed *streamingly*: one relation at a time, rows
sorted in Python by the value sort key, fed to
:class:`repro.facts.FactDigest`.  Because the relation name leads the
fact sort key and relations are visited in sorted-name order, this
equals the digest of the globally sorted fact set — byte-identical to
``MemoryStore`` and across every SQL backend.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..facts import Fact, FactDigest
from ..terms import Const, Null, Value
from .base import StoreError

if TYPE_CHECKING:
    from ..instance import Instance

_CATALOG_SCHEMA = """
CREATE TABLE IF NOT EXISTS _catalog (
    relation TEXT PRIMARY KEY,
    tbl      TEXT NOT NULL UNIQUE,
    arity    INTEGER NOT NULL
)
"""


def encode_value(value: Value) -> str:
    """Encode one value as tagged text for a column cell."""
    if isinstance(value, Const):
        payload = value.value
        if isinstance(payload, int) and not isinstance(payload, bool):
            return f"i:{payload}"
        return f"s:{payload}"
    if isinstance(value, Null):
        return f"n:{value.name}"
    raise TypeError(f"cannot store non-value {value!r}")


def decode_value(cell: str) -> Value:
    """Invert :func:`encode_value`."""
    tag, payload = cell[0], cell[2:]
    if tag == "i":
        return Const(int(payload))
    if tag == "s":
        return Const(payload)
    if tag == "n":
        return Null(payload)
    raise ValueError(f"unknown value tag in cell {cell!r}")


class SqlStoreBase:
    """Facts in a relational database; dialect details in subclasses.

    Satisfies the full :class:`~repro.store.InstanceStore` protocol, so
    premise matching, the chases, and the ``Instance`` facade run
    against any subclass unmodified.  Pass a filesystem *path* to spill
    past RAM; ``fresh=True`` drops any prior contents at that path
    first.
    """

    #: Dialect tag subclasses set (``"sqlite"``/``"duckdb"``).
    dialect = "sql"

    def __init__(self, path: str = ":memory:", *, fresh: bool = False) -> None:
        """Open (or create) the store at *path*."""
        self._path = path
        self._conn = self._connect(path)
        self._configure()
        if fresh:
            self._drop_all()
        self._conn.execute(_CATALOG_SCHEMA)
        self._tables: Dict[str, Tuple[str, int]] = {
            relation: (tbl, arity)
            for relation, tbl, arity in self._conn.execute(
                "SELECT relation, tbl, arity FROM _catalog"
            ).fetchall()
        }
        self._count: Optional[int] = None
        self._frozen = False

    # ------------------------------------------------------------------
    # Dialect hooks
    # ------------------------------------------------------------------

    def _connect(self, path: str):
        """Open the backend connection for *path*."""
        raise NotImplementedError

    def _configure(self) -> None:
        """Apply per-connection settings (pragmas); default is none."""

    def _table_names(self) -> List[str]:
        """Names of every table currently in the database."""
        raise NotImplementedError

    def _create_relation_table(self, tbl: str, arity: int) -> None:
        """Create *tbl* with TEXT columns ``c0..c{arity-1}``.

        Must install an all-columns uniqueness constraint that
        ``INSERT OR IGNORE`` deduplicates against.
        """
        raise NotImplementedError

    def _exec_insert(self, sql: str, params: Tuple[object, ...]) -> int:
        """Run one INSERT; return how many rows were actually inserted."""
        cur = self._conn.execute(sql, params)
        return max(cur.rowcount, 0)

    def _begin(self) -> None:
        self._conn.execute("BEGIN")

    def _commit(self) -> None:
        self._conn.execute("COMMIT")

    def _rollback(self) -> None:
        self._conn.execute("ROLLBACK")

    def reader_connection(self):
        """A new connection for concurrent *reads* of this database.

        Used by the sharded SQL chase to evaluate shard trigger queries
        on a thread pool.  Returns ``None`` when the backend cannot
        provide one (the chase then evaluates shards serially — same
        result, no parallelism).  Callers own the connection and must
        :meth:`close_reader` it.
        """
        return None

    def close_reader(self, conn) -> None:
        """Release a connection obtained from :meth:`reader_connection`."""
        try:
            conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def _drop_all(self) -> None:
        for name in self._table_names():
            self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')

    def ensure_relation(self, relation: str, arity: int) -> Tuple[str, int]:
        """Create (or fetch) the table for *relation*; returns (tbl, arity).

        A relation has one fixed arity per store — reusing a name at a
        different arity raises :class:`~repro.store.StoreError` (the
        in-memory representation tolerates this; the relational layout
        cannot).
        """
        known = self._tables.get(relation)
        if known is not None:
            if known[1] != arity:
                raise StoreError(
                    f"relation {relation!r} already stored at arity {known[1]}, "
                    f"cannot also use arity {arity}"
                )
            return known
        tbl = f"r{len(self._tables)}"
        self._create_relation_table(tbl, arity)
        self._conn.execute(
            "INSERT INTO _catalog (relation, tbl, arity) VALUES (?, ?, ?)",
            (relation, tbl, arity),
        )
        self._tables[relation] = (tbl, arity)
        return (tbl, arity)

    def table_for(self, relation: str) -> Optional[Tuple[str, int]]:
        """(table name, arity) for *relation*, or None when absent."""
        return self._tables.get(relation)

    def max_rowid(self, tbl: str) -> int:
        """Current high-water ``rowid`` of *tbl* (0 when empty).

        The semi-naive SQL chase snapshots these per round: rows with
        ``rowid`` above the previous snapshot are exactly the round's
        delta, because both backends assign monotonically increasing
        rowids to appends and the stores never delete.
        """
        (value,) = self._conn.execute(
            f"SELECT MAX(rowid) FROM {tbl}"
        ).fetchone()
        return int(value) if value is not None else 0

    @property
    def connection(self):
        """The underlying connection (the SQL chase executes on it)."""
        return self._conn

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise StoreError(
                f"{type(self).__name__} is frozen; build a new store "
                "instead of mutating a snapshot"
            )

    def add(self, f: Fact) -> bool:
        """Insert one fact; return True when it was new."""
        self._check_mutable()
        if not isinstance(f, Fact):
            raise TypeError(f"expected Fact, got {f!r}")
        tbl, arity = self.ensure_relation(f.relation, f.arity)
        placeholders = ", ".join("?" for _ in range(arity))
        added = self._exec_insert(
            f"INSERT OR IGNORE INTO {tbl} VALUES ({placeholders})",
            tuple(encode_value(v) for v in f.values),
        )
        if added and self._count is not None:
            self._count += added
        return bool(added)

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Bulk insert inside one transaction; return how many were new."""
        self._check_mutable()
        self._begin()
        added = 0
        try:
            for f in facts:
                if not isinstance(f, Fact):
                    raise TypeError(f"expected Fact, got {f!r}")
                tbl, arity = self.ensure_relation(f.relation, f.arity)
                placeholders = ", ".join("?" for _ in range(arity))
                added += self._exec_insert(
                    f"INSERT OR IGNORE INTO {tbl} VALUES ({placeholders})",
                    tuple(encode_value(v) for v in f.values),
                )
        except BaseException:
            self._rollback()
            raise
        self._commit()
        if self._count is not None:
            self._count += added
        return added

    # ------------------------------------------------------------------
    # The matching protocol
    # ------------------------------------------------------------------

    def relation_names(self) -> Tuple[str, ...]:
        """Sorted names of relations holding at least one fact."""
        names = []
        for relation, (tbl, _) in self._tables.items():
            row = self._conn.execute(
                f"SELECT 1 FROM {tbl} LIMIT 1"
            ).fetchone()
            if row is not None:
                names.append(relation)
        return tuple(sorted(names))

    def tuples(self, relation: str) -> List[Tuple[Value, ...]]:
        """All tuples of *relation*, decoded (empty list when absent)."""
        known = self._tables.get(relation)
        if known is None:
            return []
        tbl, _ = known
        return [
            tuple(decode_value(cell) for cell in row)
            for row in self._conn.execute(f"SELECT * FROM {tbl}").fetchall()
        ]

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Tuple[Tuple[Value, ...], ...]:
        """Tuples of *relation* carrying *value* at *position* (indexed)."""
        known = self._tables.get(relation)
        if known is None:
            return ()
        tbl, arity = known
        if not 0 <= position < arity:
            return ()
        rows = self._conn.execute(
            f"SELECT * FROM {tbl} WHERE c{position} = ?",
            (encode_value(value),),
        ).fetchall()
        return tuple(
            tuple(decode_value(cell) for cell in row) for row in rows
        )

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------

    def facts(self) -> Iterator[Fact]:
        """Stream every fact, one relation at a time."""
        for relation in sorted(self._tables):
            tbl, _ = self._tables[relation]
            for row in self._conn.execute(f"SELECT * FROM {tbl}").fetchall():
                yield Fact(relation, tuple(decode_value(cell) for cell in row))

    def fact_set(self) -> FrozenSet[Fact]:
        """Materialize the facts as a frozen set (pulls rows into RAM)."""
        return frozenset(self.facts())

    def __len__(self) -> int:
        if self._count is None:
            total = 0
            for tbl, _ in self._tables.values():
                (n,) = self._conn.execute(
                    f"SELECT COUNT(*) FROM {tbl}"
                ).fetchone()
                total += n
            self._count = total
        return self._count

    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        known = self._tables.get(f.relation)
        if known is None or known[1] != f.arity:
            return False
        tbl, arity = known
        where = " AND ".join(f"c{i} = ?" for i in range(arity))
        row = self._conn.execute(
            f"SELECT 1 FROM {tbl} WHERE {where} LIMIT 1",
            tuple(encode_value(v) for v in f.values),
        ).fetchone()
        return row is not None

    def active_domain(self) -> FrozenSet[Value]:
        """All values occurring in the store (distinct per column)."""
        values: Set[Value] = set()
        for tbl, arity in self._tables.values():
            for i in range(arity):
                for (cell,) in self._conn.execute(
                    f"SELECT DISTINCT c{i} FROM {tbl}"
                ).fetchall():
                    values.add(decode_value(cell))
        return frozenset(values)

    def nulls(self) -> FrozenSet[Null]:
        """All labeled nulls occurring in the store."""
        nulls: Set[Null] = set()
        for tbl, arity in self._tables.values():
            for i in range(arity):
                for (cell,) in self._conn.execute(
                    f"SELECT DISTINCT c{i} FROM {tbl} WHERE c{i} LIKE 'n:%'"
                ).fetchall():
                    nulls.add(Null(cell[2:]))
        return frozenset(nulls)

    def digest(self) -> str:
        """Streaming content digest, byte-identical to ``MemoryStore``.

        Relations are visited in sorted-name order and each relation's
        rows are sorted in Python by the value sort key — equivalent to
        the global fact sort because the relation name leads the fact
        sort key.  (Sorting on the *encoded* text in SQL would be
        unsound: the tag/separator bytes do not preserve the value
        order.)
        """
        acc = FactDigest()
        for relation in sorted(self._tables):
            tbl, _ = self._tables[relation]
            rows = [
                Fact(relation, tuple(decode_value(cell) for cell in row))
                for row in self._conn.execute(f"SELECT * FROM {tbl}").fetchall()
            ]
            acc.update_sorted(rows)
        return acc.hexdigest()

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has run."""
        return self._frozen

    def freeze(self) -> None:
        """Make the store immutable at the facade level (idempotent)."""
        self._frozen = True

    def as_instance(self) -> "Instance":
        """Freeze and wrap *this* store as an ``Instance`` (no copy)."""
        from ..instance import Instance

        self.freeze()
        return Instance(store=self)

    def snapshot(self) -> "Instance":
        """A frozen in-memory copy of the current contents."""
        from ..instance import Instance

        return Instance(self.facts())

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()
