"""The in-memory store: today's ``Instance`` internals, extracted.

``MemoryStore`` is the historical representation verbatim — a fact set,
a per-relation tuple map, an eagerly maintained active domain, and the
lazily built per-(relation, position, value) hash index — moved out of
``Instance`` so the facade can run against any backend.  Behavior is
intentionally identical: ``Instance`` over a ``MemoryStore`` matches,
chases, hashes, and digests exactly as the pre-store code did.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Optional,
    Tuple,
)

from ..facts import Fact, digest_facts
from ..schema import Schema
from ..terms import Null, Value, value_sort_key
from .base import check_mutable

if TYPE_CHECKING:
    from ..instance import Instance


class MemoryStore:
    """Facts in Python sets — the default backend.

    Mutable until :meth:`freeze`; the chase's :class:`InstanceBuilder`
    wraps a mutable one, ``Instance`` wraps a frozen one.  An optional
    *schema* validates relation membership and arities on insert, which
    is where ``Instance(facts, schema=...)``'s validation now lives.
    """

    __slots__ = ("_facts", "_relations", "_values", "_nulls", "_index", "_frozen", "_schema")

    def __init__(self, schema: Optional[Schema] = None) -> None:
        """Start empty and mutable; *schema* adds arity validation."""
        self._facts: set = set()
        self._relations: Dict[str, set] = {}
        self._values: set = set()
        self._nulls: set = set()
        self._index: Optional[Dict[str, dict]] = None
        self._frozen = False
        self._schema = schema

    @classmethod
    def from_instance(cls, instance: "Instance") -> "MemoryStore":
        """A mutable store pre-seeded with *instance*'s facts and domain.

        The fast path the chase uses every time it builds an
        :class:`~repro.instance.InstanceBuilder` from an input instance.
        Facts are inserted in *sorted* order: set iteration order in
        CPython depends on insertion history, and the chase enumerates
        triggers (and therefore names fresh nulls) in that order —
        canonical seeding is what makes a chase over a SQLite-backed
        input fact-for-fact identical to one over a memory-backed input
        instead of merely hom-equivalent.
        """
        store = cls()
        store._facts = set(sorted(instance.facts, key=Fact.sort_key))
        store._values = set(sorted(instance.active_domain, key=value_sort_key))
        store._nulls = set(instance.nulls)
        store._relations = {
            rel: set(
                sorted(
                    instance.tuples(rel),
                    key=lambda t: tuple(value_sort_key(v) for v in t),
                )
            )
            for rel in instance.relation_names
        }
        return store

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, f: Fact) -> bool:
        """Add a fact; return True when it was new."""
        if self._frozen:
            check_mutable(self)
        if not isinstance(f, Fact):
            raise TypeError(f"expected Fact, got {f!r}")
        if self._schema is not None:
            if f.relation not in self._schema:
                raise ValueError(
                    f"fact {f} uses relation outside schema {self._schema!r}"
                )
            if self._schema.arity(f.relation) != f.arity:
                raise ValueError(
                    f"fact {f} has arity {f.arity}, schema says "
                    f"{self._schema.arity(f.relation)}"
                )
        if f in self._facts:
            return False
        self._facts.add(f)
        self._values.update(f.values)
        for v in f.values:
            if isinstance(v, Null):
                self._nulls.add(v)
        self._relations.setdefault(f.relation, set()).add(f.values)
        self._index = None
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for f in facts if self.add(f))

    # ------------------------------------------------------------------
    # The matching protocol
    # ------------------------------------------------------------------

    def relation_names(self) -> Tuple[str, ...]:
        """Sorted names of relations with at least one fact."""
        return tuple(sorted(self._relations))

    def tuples(self, relation: str):
        """The tuples of *relation* (a live set view; empty when absent)."""
        if self._frozen:
            return self._relations.get(relation, frozenset())
        return self._relations.get(relation, set())

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Tuple[Tuple[Value, ...], ...]:
        """Tuples of *relation* carrying *value* at *position*.

        Backed by the lazily built per-(relation, position, value) hash
        index inherited from the pre-store ``Instance``; mutation
        invalidates it, so hot use is on frozen stores.
        """
        if self._index is None:
            index: Dict[str, Dict[Tuple[int, Value], list]] = {}
            for rel, tuples in self._relations.items():
                buckets: Dict[Tuple[int, Value], list] = {}
                for values in tuples:
                    for pos, val in enumerate(values):
                        buckets.setdefault((pos, val), []).append(values)
                index[rel] = buckets
            self._index = index
        buckets = self._index.get(relation)
        if buckets is None:
            return ()
        return tuple(buckets.get((position, value), ()))

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------

    def facts(self) -> Iterator[Fact]:
        """Iterate every fact (set order; callers sort when needed)."""
        return iter(self._facts)

    def fact_set(self) -> FrozenSet[Fact]:
        """The facts as a frozen set (zero-copy once frozen)."""
        if self._frozen and isinstance(self._facts, frozenset):
            return self._facts
        return frozenset(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, f: object) -> bool:
        return f in self._facts

    def active_domain(self) -> FrozenSet[Value]:
        """All values occurring in the store."""
        if self._frozen and isinstance(self._values, frozenset):
            return self._values
        return frozenset(self._values)

    def values_view(self) -> set:
        """The live (mutable) active-domain set, for builder hot paths."""
        return self._values

    def nulls(self) -> FrozenSet[Null]:
        """All labeled nulls occurring in the store."""
        if self._frozen and isinstance(self._nulls, frozenset):
            return self._nulls
        return frozenset(self._nulls)

    def digest(self) -> str:
        """Content digest of the fact set (hex SHA-256, order-free)."""
        return digest_facts(self._facts)

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has run."""
        return self._frozen

    def freeze(self) -> None:
        """Make the store immutable (idempotent)."""
        if self._frozen:
            return
        self._relations = {
            rel: frozenset(tuples) for rel, tuples in self._relations.items()
        }
        self._facts = frozenset(self._facts)
        self._values = frozenset(self._values)
        self._nulls = frozenset(self._nulls)
        self._frozen = True

    def snapshot(self) -> "Instance":
        """Freeze a *copy* of the current contents into an ``Instance``."""
        from ..instance import Instance

        return Instance(self._facts)

    def close(self) -> None:
        """No resources to release for the in-memory backend."""
