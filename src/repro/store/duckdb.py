"""DuckDB-backed fact store behind the same ``InstanceStore`` protocol.

DuckDB is an *optional* dependency: this module always imports, and
:func:`duckdb_available` reports whether the wheel is present.
Constructing a :class:`DuckDbStore` without it raises a
:class:`~repro.store.StoreError` with an actionable message — callers
(tests, CI lanes, ``open_store``) gate on availability rather than on
import errors.

The store shares its entire implementation with ``SqliteStore`` via
:class:`repro.store.sqlbase.SqlStoreBase`; only the dialect hooks
differ:

* relation tables declare a table-level ``UNIQUE`` constraint over all
  columns — DuckDB's ``INSERT OR IGNORE`` deduplicates against
  constraints, not standalone unique indexes;
* inserted-row counts come from the statement's result row (DuckDB
  reports the change count as a one-row result rather than via the
  DB-API ``rowcount``, which older versions pin at -1);
* reader connections for sharded chase rounds are cursors of the main
  connection — ``conn.cursor()`` in DuckDB is a genuinely independent
  session onto the same database, safe to use from another thread.

Everything observable — the tagged cell encoding, set semantics, the
streaming content digest — is byte-identical to the SQLite and memory
backends; ``tests/unit/test_store_conformance.py`` runs the full suite
against this class when the wheel is installed, and
``tests/unit/test_digest_regression.py`` pins cross-backend digests.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import StoreError
from .sqlbase import SqlStoreBase

try:  # pragma: no cover - exercised only where the wheel is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None

__all__ = ["DuckDbStore", "duckdb_available"]


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` package is importable."""
    return _duckdb is not None


class DuckDbStore(SqlStoreBase):
    """Facts in a DuckDB database (``:memory:`` or on disk).

    Same protocol, same encoding, same digest as ``SqliteStore`` — a
    columnar engine with vectorized joins behind the identical store
    spec surface (``duckdb`` / ``duckdb:path``).  Requires the optional
    ``duckdb`` package.
    """

    dialect = "duckdb"

    def __init__(self, path: str = ":memory:", *, fresh: bool = False) -> None:
        """Open (or create) the store at *path*."""
        if _duckdb is None:
            raise StoreError(
                "the duckdb store backend requires the optional 'duckdb' "
                "package; install it or use the sqlite/memory backends"
            )
        super().__init__(path, fresh=fresh)

    def _connect(self, path: str):
        return _duckdb.connect(path)

    def _table_names(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_schema = 'main'"
        ).fetchall()
        return [name for (name,) in rows]

    def _create_relation_table(self, tbl: str, arity: int) -> None:
        cols = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        all_cols = ", ".join(f"c{i}" for i in range(arity))
        self._conn.execute(
            f"CREATE TABLE {tbl} ({cols}, UNIQUE ({all_cols}))"
        )
        for i in range(1, arity):
            self._conn.execute(f"CREATE INDEX {tbl}_c{i} ON {tbl} (c{i})")

    def _exec_insert(self, sql: str, params: Tuple[object, ...]) -> int:
        cur = self._conn.execute(sql, params)
        row = cur.fetchone()
        return int(row[0]) if row else 0

    def _begin(self) -> None:
        self._conn.execute("BEGIN TRANSACTION")

    def reader_connection(self):
        """An independent cursor-session onto the same database."""
        return self._conn.cursor()
