"""Mapping → SQL plan compiler: the set-at-a-time, semi-naive chase.

"Laconic schema mappings" (ten Cate, Chiticariu, Kolaitis, Tan) shows
that for broad mapping classes the chase underpinning data exchange can
be compiled to SQL and run set-at-a-time instead of trigger-by-trigger.
This module does that for the **non-disjunctive tgd fragment**: each
plain or inequality-guarded :class:`~repro.logic.dependencies.Tgd`
becomes one ``INSERT ... SELECT`` per conclusion atom, executed inside
any SQL-backed store (:class:`~repro.store.SqliteStore` or
:class:`~repro.store.DuckDbStore`):

* the **trigger query** joins the premise atoms (shared variables become
  equi-join conditions, constants become parameters, inequality guards
  become ``<>`` predicates on the encoded cells — sound because the
  value encoding is injective, and ``Constant`` guards become prefix
  tests on the encoding's type tag: a cell holds a null exactly when
  it starts with ``'n:'``) and keeps the ``DISTINCT`` frontier
  assignments with no witness, via ``NOT EXISTS`` over the joined
  conclusion atoms — exactly the restricted-chase firing condition;
* triggers land in a temp table whose ``trig_n`` column (1..n, assigned
  by ``ROW_NUMBER() OVER (ORDER BY frontier)``) numbers them, so
  existential nulls are minted *inside SQL* as
  ``'n:' || prefix || (base + (trig_n-1)*K + j)`` — deterministic,
  collision-free, no per-row Python;
* one ``INSERT OR IGNORE ... SELECT`` per conclusion atom then fires
  every trigger at once.

Evaluation is **semi-naive by default** (decision D6): each round
snapshots a per-relation ``rowid`` watermark — the SQL analog of
``TriggerIndex.begin_round()`` — and each compiled tgd runs as the
standard delta-join union: one variant per premise atom, where that
atom reads only the previous round's delta window
(``rowid`` in ``(W_prev, W]``), atoms before it read the pre-delta
prefix (``rowid <= W_prev``), and atoms after it read the full visible
relation (``rowid <= W``).  The variants partition the delta-touching
join rows exactly, so round *k* only enumerates bindings that involve a
round *k−1* fact.  The ``NOT EXISTS`` satisfaction check stays against
the **live** tables (decision D5), which is what makes the delta and
naive trigger sets provably identical per round: an all-old frontier
row was enumerated the round before and is therefore satisfied now.
Premise matching in *both* modes is confined to the round-start
watermark, so ``evaluation="naive"`` (or ``REPRO_NAIVE_CHASE=1``)
survives as a byte-identical differential oracle — same triggers, same
null numbering, same rounds, same digests, only the per-round join work
(``triggers_considered``) differs.

Rounds can additionally be **sharded** (``jobs > 1``): each trigger
query is partitioned by ``t0.rowid % jobs`` and the shards are
evaluated on a thread pool over per-shard reader connections, then
merged in Python by sorted-set union and renumbered — the merged
trigger table is identical to the serial ``ROW_NUMBER`` ordering, so
sharded output is fact-for-fact identical to serial (see D6).

Dependencies outside the fragment (guard kinds a future dialect might
add) **fall back per round** to the tuple-at-a-time
chase — premise matching runs against the store through the ordinary
:func:`~repro.logic.matching.match_atoms` protocol — so a mixed
dependency set still reaches the same fixpoint.  Disjunctive tgds are
rejected outright, mirroring :func:`repro.chase.standard.chase`.

Result caveat: a SQL chase reaches the same fixpoint as the in-memory
restricted chase *up to null renaming* (hom-equivalent); for **full**
tgds no nulls are minted and the result is fact-for-fact identical —
that is what CI's store-smoke diff pins.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..terms import Const, Null, Var
from ..logic.atoms import Atom
from ..logic.dependencies import Dependency, Tgd
from ..logic.guards import ConstantGuard, Guard, Inequality
from .sqlbase import SqlStoreBase, encode_value

__all__ = [
    "CompiledTgd",
    "SqlChaseResult",
    "SqlPlanError",
    "TriggerQuery",
    "Watermark",
    "compile_tgd",
    "in_sql_fragment",
    "sql_chase",
]

#: Name of the per-statement temp table holding the current trigger set.
TRIGGER_TABLE = "_sqlchase_trig"

#: Param-plan sentinels, replaced at execution time (see CompiledTgd).
PREFIX = object()
BASE = object()

#: Appended to a trigger/count query to restrict it to one shard; binds
#: two extra parameters, ``(jobs, shard)``.
SHARD_CLAUSE = " AND t0.rowid % ? = ?"


class SqlPlanError(ReproError):
    """A dependency cannot be executed by the SQL chase at all."""


@dataclass(frozen=True)
class Watermark:
    """Param-plan sentinel: a per-relation ``rowid`` visibility bound.

    Resolved at execution time against the round's watermark snapshots:
    ``bound="new"`` is the round-start high-water mark *W* (facts
    visible this round), ``bound="old"`` is the previous round's mark
    *W_prev* (``(W_prev, W]`` is the delta window).
    """

    relation: str
    bound: str  # "old" | "new"


def in_sql_fragment(dep: Dependency) -> bool:
    """True when *dep* compiles to a SQL plan (no per-round fallback).

    The fragment is: non-disjunctive tgds whose guards are all
    inequalities or ``Constant`` guards.  Inequalities compare encoded
    cells (sound because the encoding is injective); ``Constant``
    guards probe the *type* of a value, which the tagged encoding makes
    a prefix test — a cell is a null exactly when it starts with
    ``'n:'`` (constants encode as ``'i:'``/``'s:'``).  Guard kinds
    outside the dialect route the dependency to the tuple fallback.
    """
    return isinstance(dep, Tgd) and all(
        isinstance(g, (Inequality, ConstantGuard)) for g in dep.guards
    )


@dataclass(frozen=True)
class TriggerQuery:
    """One candidate-trigger SELECT plus its join-size counter.

    ``sql`` yields the ``DISTINCT`` unsatisfied frontier rows of one
    evaluation variant; ``count_sql`` counts the variant's raw premise
    join rows (guards applied, satisfaction check dropped) — the
    set-at-a-time analog of the tuple chase's *bindings enumerated*
    metric.  Parameter tuples mix encoded literal cells with
    :class:`Watermark` sentinels resolved per round.
    """

    sql: str
    params: Tuple[object, ...]
    count_sql: str
    count_params: Tuple[object, ...]


@dataclass(frozen=True)
class CompiledTgd:
    """One tgd's SQL plan: trigger queries + per-conclusion-atom inserts.

    ``naive`` is the single full-join trigger query (every premise atom
    reads ``rowid <= W``); ``deltas`` holds the semi-naive variants, one
    per premise atom (that atom reads the delta window, earlier atoms
    the pre-delta prefix, later atoms the full visible relation — the
    standard delta-join union, a disjoint cover of the delta-touching
    join rows).  ``inserts`` holds ``(sql, param_plan)`` pairs whose
    statements select from the trigger temp table.  A *param_plan*
    lists the statement's positional parameters in placeholder order:
    encoded literal cells verbatim, plus the :data:`PREFIX`/:data:`BASE`
    sentinels that the executor replaces with the null prefix and the
    round's minting base.
    """

    tgd: Tgd
    index: int
    frontier: Tuple[Var, ...]
    existentials: Tuple[Var, ...]
    naive: TriggerQuery
    deltas: Tuple[TriggerQuery, ...]
    inserts: Tuple[Tuple[str, Tuple[object, ...]], ...]

    @property
    def trigger_sql(self) -> str:
        """The naive trigger SELECT (kept for introspection/tests)."""
        return self.naive.sql

    @property
    def trigger_params(self) -> Tuple[object, ...]:
        """Parameters of :attr:`trigger_sql`."""
        return self.naive.params


def _guard_condition(
    guard: Guard, var_col: Dict[Var, str], params: List[object]
) -> str:
    """A fragment guard as a SQL predicate on encoded cells.

    Inequalities become ``<>`` between encoded cells/parameters;
    ``Constant`` guards become the type-tag prefix test
    ``SUBSTR(cell, 1, 2) <> 'n:'`` (a guard on a literal constant is
    trivially true and compiles to ``1 = 1``).
    """
    if isinstance(guard, ConstantGuard):
        if isinstance(guard.term, Const):
            return "1 = 1"
        return f"SUBSTR({var_col[guard.term]}, 1, 2) <> 'n:'"
    assert isinstance(guard, Inequality)
    sides = []
    for term in (guard.left, guard.right):
        if isinstance(term, Const):
            sides.append("?")
            params.append(encode_value(term))
        else:
            sides.append(var_col[term])
    return f"{sides[0]} <> {sides[1]}"


def _witness_subquery(
    tgd: Tgd,
    resolve: Dict[str, Tuple[str, int]],
    var_col: Dict[Var, str],
    params: List[object],
) -> str:
    """``EXISTS``-body joining the conclusion atoms (restricted check).

    Frontier variables correlate with the outer premise columns;
    existential variables join freely inside the subquery — precisely
    "the conclusion is witnessed by some extension of the frontier
    binding".  Deliberately *unwindowed*: satisfaction reads the live
    tables (decisions D5/D6).
    """
    from_items: List[str] = []
    conds: List[str] = []
    sub_col: Dict[Var, str] = {}
    for i, atom in enumerate(tgd.conclusion):
        tbl, _ = resolve[atom.relation]
        alias = f"s{i}"
        from_items.append(f"{tbl} AS {alias}")
        for j, term in enumerate(atom.terms):
            col = f"{alias}.c{j}"
            if isinstance(term, Const):
                conds.append(f"{col} = ?")
                params.append(encode_value(term))
            elif term in var_col:  # frontier: correlate with the outer row
                conds.append(f"{col} = {var_col[term]}")
            else:  # existential: free join variable inside the subquery
                bound = sub_col.get(term)
                if bound is None:
                    sub_col[term] = col
                else:
                    conds.append(f"{col} = {bound}")
    where = f" WHERE {' AND '.join(conds)}" if conds else ""
    return f"SELECT 1 FROM {', '.join(from_items)}{where}"


def _compile_variant(
    tgd: Tgd,
    resolve: Dict[str, Tuple[str, int]],
    delta_index: Optional[int],
) -> TriggerQuery:
    """One evaluation variant of the trigger query.

    ``delta_index=None`` compiles the naive variant (every premise atom
    windowed to ``rowid <= W``); ``delta_index=d`` compiles the
    semi-naive variant where atom *d* reads the delta window
    ``(W_prev, W]``, atoms before *d* read ``rowid <= W_prev`` and
    atoms after *d* read ``rowid <= W`` — so the variants for
    ``d = 0..len(premise)-1`` partition the delta-touching join rows.
    """
    from_items: List[str] = []
    conds: List[str] = []
    params: List[object] = []
    var_col: Dict[Var, str] = {}
    for i, atom in enumerate(tgd.premise):
        tbl, _ = resolve[atom.relation]
        alias = f"t{i}"
        from_items.append(f"{tbl} AS {alias}")
        if delta_index is None or i > delta_index:
            conds.append(f"{alias}.rowid <= ?")
            params.append(Watermark(atom.relation, "new"))
        elif i == delta_index:
            conds.append(f"{alias}.rowid > ?")
            params.append(Watermark(atom.relation, "old"))
            conds.append(f"{alias}.rowid <= ?")
            params.append(Watermark(atom.relation, "new"))
        else:  # i < delta_index
            conds.append(f"{alias}.rowid <= ?")
            params.append(Watermark(atom.relation, "old"))
        for j, term in enumerate(atom.terms):
            col = f"{alias}.c{j}"
            if isinstance(term, Const):
                conds.append(f"{col} = ?")
                params.append(encode_value(term))
            else:
                bound = var_col.get(term)
                if bound is None:
                    var_col[term] = col
                else:
                    conds.append(f"{col} = {bound}")
    for guard in tgd.guards:
        conds.append(_guard_condition(guard, var_col, params))

    # Join-size counter: premise + guards, no satisfaction check.
    count_sql = (
        f"SELECT COUNT(*) FROM {', '.join(from_items)} "
        f"WHERE {' AND '.join(conds)}"
    )
    count_params = tuple(params)

    conds.append(
        f"NOT EXISTS ({_witness_subquery(tgd, resolve, var_col, params)})"
    )
    frontier = tuple(sorted(tgd.frontier))
    if frontier:
        select = ", ".join(
            f"{var_col[v]} AS f{i}" for i, v in enumerate(frontier)
        )
    else:
        select = "1 AS f_dummy"
    sql = (
        f"SELECT DISTINCT {select} FROM {', '.join(from_items)} "
        f"WHERE {' AND '.join(conds)}"
    )
    return TriggerQuery(
        sql=sql,
        params=tuple(params),
        count_sql=count_sql,
        count_params=count_params,
    )


def compile_tgd(
    tgd: Tgd, index: int, resolve: Dict[str, Tuple[str, int]]
) -> Optional[CompiledTgd]:
    """Compile one tgd against the store's table catalog.

    Returns ``None`` when the dependency is outside the SQL fragment
    (the caller then routes it to the per-round tuple fallback).
    *resolve* maps every premise/conclusion relation to its
    ``(table, arity)`` — the caller ensures the tables exist.
    """
    if not in_sql_fragment(tgd):
        return None
    frontier = tuple(sorted(tgd.frontier))
    existentials = tuple(sorted(tgd.existential_variables))

    naive = _compile_variant(tgd, resolve, None)
    deltas = tuple(
        _compile_variant(tgd, resolve, d) for d in range(len(tgd.premise))
    )

    frontier_pos = {v: i for i, v in enumerate(frontier)}
    exist_pos = {v: j for j, v in enumerate(existentials)}
    stride = max(len(existentials), 1)
    inserts: List[Tuple[str, Tuple[object, ...]]] = []
    for atom in tgd.conclusion:
        tbl, _ = resolve[atom.relation]
        exprs: List[str] = []
        param_plan: List[object] = []
        for term in atom.terms:
            if isinstance(term, Const):
                exprs.append("?")
                param_plan.append(encode_value(term))
            elif term in frontier_pos:
                exprs.append(f"f{frontier_pos[term]}")
            else:
                # Fresh null: base + (trig_n-1)*stride + position, named
                # in SQL.  `?` slots for (prefix, base) are filled per
                # round.  CAST keeps the concatenation portable (DuckDB
                # will not implicitly stringify an integer operand).
                j = exist_pos[term]
                exprs.append(
                    "'n:' || ? || CAST(? + "
                    f"({TRIGGER_TABLE}.trig_n - 1) * {stride} + {j} "
                    "AS VARCHAR)"
                )
                param_plan.extend((PREFIX, BASE))
        inserts.append(
            (
                f"INSERT OR IGNORE INTO {tbl} "
                f"SELECT {', '.join(exprs)} FROM {TRIGGER_TABLE}",
                tuple(param_plan),
            )
        )
    return CompiledTgd(
        tgd=tgd,
        index=index,
        frontier=frontier,
        existentials=existentials,
        naive=naive,
        deltas=deltas,
        inserts=tuple(inserts),
    )


@dataclass(frozen=True)
class SqlChaseResult:
    """Outcome of a SQL chase run over a SQL-backed store.

    Mirrors :class:`repro.chase.standard.ChaseResult` where it can;
    ``generated_count`` replaces the materialized ``generated`` set (the
    point of this backend is not to materialize), ``compiled`` /
    ``fallback`` report how the dependency set split across the two
    execution regimes, ``delta_sizes`` records how many facts became
    newly visible entering each round, and ``triggers_considered``
    totals the raw premise-join rows the trigger queries enumerated —
    the set-at-a-time analog of the tuple chase's bindings metric, and
    the quantity semi-naive evaluation shrinks.
    """

    store: SqlStoreBase
    steps: int
    rounds: int
    generated_count: int
    compiled: int
    fallback: int
    exhausted: Optional[object] = None
    delta_sizes: Tuple[int, ...] = ()
    triggers_considered: int = 0
    evaluation: str = "delta"
    jobs: int = 1

    @property
    def completed(self) -> bool:
        """True when the chase reached its fixpoint within budget."""
        return self.exhausted is None

    @property
    def instance(self):
        """The chased store, frozen and wrapped as an ``Instance``."""
        return self.store.as_instance()


def _null_base(store: SqlStoreBase, prefix: str) -> int:
    """First integer suffix that avoids every existing ``prefix<int>`` null."""
    base = 0
    for null in store.nulls():
        if null.name.startswith(prefix):
            suffix = null.name[len(prefix):]
            if suffix.isdigit():
                base = max(base, int(suffix) + 1)
    return base


def _resolve_params(
    params: Tuple[object, ...],
    wm_old: Dict[str, int],
    wm_new: Dict[str, int],
    extra: Tuple[object, ...] = (),
) -> Tuple[object, ...]:
    """Replace :class:`Watermark` sentinels with the round's snapshots."""
    out: List[object] = []
    for p in params:
        if isinstance(p, Watermark):
            out.append(wm_old[p.relation] if p.bound == "old" else wm_new[p.relation])
        else:
            out.append(p)
    out.extend(extra)
    return tuple(out)


def _build_triggers_serial(
    conn,
    plan: CompiledTgd,
    queries: Sequence[TriggerQuery],
    wm_old: Dict[str, int],
    wm_new: Dict[str, int],
) -> Tuple[int, int]:
    """Materialize the trigger table on the main connection.

    The candidate rows (naive query, or the UNION of the delta
    variants — UNION also deduplicates frontier rows reachable through
    several variants) are numbered by ``ROW_NUMBER() OVER (ORDER BY
    frontier)``, which fixes the null-minting order independently of
    storage order.  Returns ``(trigger_count, joins_considered)``.
    """
    fcols = [f"f{i}" for i in range(len(plan.frontier))] or ["f_dummy"]
    cand = " UNION ".join(q.sql for q in queries)
    params: List[object] = []
    for q in queries:
        params.extend(_resolve_params(q.params, wm_old, wm_new))
    conn.execute(
        f"CREATE TEMP TABLE {TRIGGER_TABLE} AS "
        f"SELECT {', '.join(fcols)}, "
        f"ROW_NUMBER() OVER (ORDER BY {', '.join(fcols)}) AS trig_n "
        f"FROM ({cand}) AS _cand",
        tuple(params),
    )
    (n,) = conn.execute(f"SELECT COUNT(*) FROM {TRIGGER_TABLE}").fetchone()
    considered = 0
    for q in queries:
        (c,) = conn.execute(
            q.count_sql, _resolve_params(q.count_params, wm_old, wm_new)
        ).fetchone()
        considered += c
    return n, considered


def _build_triggers_sharded(
    conn,
    plan: CompiledTgd,
    queries: Sequence[TriggerQuery],
    wm_old: Dict[str, int],
    wm_new: Dict[str, int],
    jobs: int,
    executor: Optional[ThreadPoolExecutor],
    readers: Sequence[object],
) -> Tuple[int, int]:
    """Materialize the trigger table from ``jobs`` frontier shards.

    Each shard evaluates every variant restricted to
    ``t0.rowid % jobs = shard`` — a partition of the candidate rows'
    *derivations* (a frontier row may surface in several shards; the
    merge deduplicates).  Shards run on the thread pool over reader
    connections when available, serially on the main connection
    otherwise — either way the merged rows are sorted in Python (the
    encoded cells are text; Python's code-point order equals SQL's
    binary collation on their UTF-8 bytes) and numbered 1..n, exactly
    reproducing the serial ``ROW_NUMBER`` ordering.  Returns
    ``(trigger_count, joins_considered)``.
    """

    def run_shard(reader, shard: int):
        rows: List[Tuple[object, ...]] = []
        considered = 0
        for q in queries:
            rows.extend(
                tuple(r)
                for r in reader.execute(
                    q.sql + SHARD_CLAUSE,
                    _resolve_params(q.params, wm_old, wm_new, (jobs, shard)),
                ).fetchall()
            )
            (c,) = reader.execute(
                q.count_sql + SHARD_CLAUSE,
                _resolve_params(q.count_params, wm_old, wm_new, (jobs, shard)),
            ).fetchone()
            considered += c
        return rows, considered

    if executor is not None:
        parts = list(executor.map(run_shard, readers, range(jobs)))
    else:
        parts = [run_shard(conn, shard) for shard in range(jobs)]

    merged: List[Tuple[object, ...]] = sorted(
        {row for rows, _ in parts for row in rows}
    )
    considered = sum(c for _, c in parts)

    if plan.frontier:
        col_defs = ", ".join(f"f{i} TEXT" for i in range(len(plan.frontier)))
    else:
        col_defs = "f_dummy INTEGER"
    conn.execute(
        f"CREATE TEMP TABLE {TRIGGER_TABLE} ({col_defs}, trig_n INTEGER)"
    )
    if merged:
        width = len(merged[0]) + 1
        placeholders = ", ".join("?" for _ in range(width))
        conn.executemany(
            f"INSERT INTO {TRIGGER_TABLE} VALUES ({placeholders})",
            [row + (i + 1,) for i, row in enumerate(merged)],
        )
    return len(merged), considered


def sql_chase(
    store: SqlStoreBase,
    dependencies: Sequence[Dependency],
    *,
    null_prefix: str = "N",
    tracer=None,
    limits=None,
    budget=None,
    evaluation: Optional[str] = None,
    jobs: Optional[int] = None,
) -> SqlChaseResult:
    """Run the restricted chase set-at-a-time inside *store*.

    Compilable dependencies execute as ``INSERT ... SELECT`` plans; the
    rest fall back, per round, to tuple-at-a-time matching against the
    store (same fixpoint, slower).  *evaluation* selects semi-naive
    delta joins (``"delta"``, the default) or the full-join oracle
    (``"naive"``); resolution follows
    :func:`repro.chase.standard.resolve_evaluation` (explicit argument >
    ``REPRO_NAIVE_CHASE=1`` > delta), and the two modes are
    byte-identical in everything but ``triggers_considered``.
    *jobs* > 1 shards each round's trigger queries across a thread pool
    (fact-for-fact identical to serial; see module docstring).

    Resource governance matches :func:`repro.chase.standard.chase`:
    pass ``limits`` or a shared ``budget``; with neither, the ambient
    budget or the 64-round non-termination guard applies, and
    exhaustion either raises or returns a tagged partial result per
    ``Limits.on_exhausted``.

    Provenance note: the SQL path fires whole trigger *sets*, so no
    per-trigger ``TriggerFired`` events are emitted — set-at-a-time
    throughput trades away per-fact provenance.  Budget heartbeats and
    exhaustion events still flow to the tracer/reporter as usual.
    """
    # Imported here, not at module top: chase.standard sits *above* the
    # store package in the layer map (it imports the Instance facade).
    from ..chase.standard import (
        DEFAULT_MAX_ROUNDS,
        _LEGACY_LIMITS,
        _conclusion_satisfied,
        report_exhaustion,
        resolve_budget,
        resolve_evaluation,
    )
    from ..logic.matching import match_atoms
    from ..obs.tracer import current_tracer, maybe_span

    if not isinstance(store, SqlStoreBase):
        raise SqlPlanError(
            f"sql_chase needs a SQL-backed store (sqlite or duckdb), "
            f"got {type(store).__name__}"
        )
    tgds: List[Tgd] = []
    for dep in dependencies:
        if not isinstance(dep, Tgd):
            raise SqlPlanError(
                f"sql_chase handles plain tgds only, got {dep!r}; "
                "use disjunctive_chase for disjunctive dependencies"
            )
        tgds.append(dep)
    if store.frozen:
        raise SqlPlanError("cannot chase into a frozen store")
    if tracer is None:
        tracer = current_tracer()
    budget = resolve_budget(
        limits, budget, _LEGACY_LIMITS, fallback_rounds=DEFAULT_MAX_ROUNDS
    )
    evaluation = resolve_evaluation(evaluation)
    jobs = 1 if jobs is None else max(int(jobs), 1)

    resolve: Dict[str, Tuple[str, int]] = {}
    for tgd in tgds:
        for atom in tuple(tgd.premise) + tuple(tgd.conclusion):
            resolve[atom.relation] = store.ensure_relation(
                atom.relation, atom.arity
            )

    compiled: List[CompiledTgd] = []
    fallback: List[Tuple[int, Tgd]] = []
    for index, tgd in enumerate(tgds):
        plan = compile_tgd(tgd, index, resolve)
        if plan is None:
            fallback.append((index, tgd))
        else:
            compiled.append(plan)

    conn = store.connection
    next_null = _null_base(store, null_prefix)
    steps = 0
    rounds = 0
    minted_total = 0
    added_total = 0
    considered_total = 0
    delta_sizes: List[int] = []
    exhausted = None

    executor: Optional[ThreadPoolExecutor] = None
    readers: List[object] = []
    if jobs > 1 and compiled:
        readers = [store.reader_connection() for _ in range(jobs)]
        if any(r is None for r in readers):
            for r in readers:
                if r is not None:
                    store.close_reader(r)
            readers = []  # shards run serially on the main connection
        else:
            executor = ThreadPoolExecutor(max_workers=jobs)

    # Per-relation rowid watermarks: wm_visible is this round's premise
    # visibility bound W, wm_old the previous round's (so (old, new] is
    # the delta window).  Facts inserted mid-round get larger rowids and
    # only become matchable next round — the SQL analog of
    # TriggerIndex.begin_round() rotation.
    wm_visible: Dict[str, int] = {rel: 0 for rel in resolve}

    try:
        with maybe_span(
            tracer,
            "sql_chase",
            compiled=len(compiled),
            fallback=len(fallback),
            evaluation=evaluation,
            jobs=jobs,
        ):
            while exhausted is None:
                rounds += 1
                exhausted = budget.start_round("sql_chase")
                if exhausted is not None:
                    rounds -= 1
                    break
                wm_old = wm_visible
                wm_visible = {
                    rel: store.max_rowid(resolve[rel][0]) for rel in resolve
                }
                delta_sizes.append(
                    sum(
                        wm_visible[rel] - wm_old[rel] for rel in resolve
                    )
                )
                progressed = False
                for plan in compiled:
                    queries = (
                        plan.deltas if evaluation == "delta" else (plan.naive,)
                    )
                    conn.execute(f"DROP TABLE IF EXISTS {TRIGGER_TABLE}")
                    if jobs > 1:
                        n, considered = _build_triggers_sharded(
                            conn, plan, queries, wm_old, wm_visible,
                            jobs, executor, readers,
                        )
                    else:
                        n, considered = _build_triggers_serial(
                            conn, plan, queries, wm_old, wm_visible
                        )
                    considered_total += considered
                    if n == 0:
                        continue
                    stride = len(plan.existentials)
                    added = 0
                    for insert_sql, param_plan in plan.inserts:
                        params = tuple(
                            null_prefix
                            if p is PREFIX
                            else next_null
                            if p is BASE
                            else p
                            for p in param_plan
                        )
                        added += store._exec_insert(insert_sql, params)
                    next_null += n * stride
                    minted_total += n * stride
                    steps += n
                    added_total += added
                    progressed = True
                    store._count = None  # inserts bypassed the add() counter
                    exhausted = budget.charge(
                        "sql_chase", facts=len(store), nulls=minted_total
                    )
                    if exhausted is not None:
                        break
                if exhausted is None:
                    for index, tgd in fallback:
                        bindings = list(
                            match_atoms(tgd.premise, store, tgd.guards)
                        )
                        considered_total += len(bindings)
                        for binding in bindings:
                            if _conclusion_satisfied(tgd, binding, store):
                                continue
                            full = dict(binding)
                            for var in sorted(tgd.existential_variables):
                                full[var] = Null(f"{null_prefix}{next_null}")
                                next_null += 1
                                minted_total += 1
                            added_total += store.add_all(
                                atom.instantiate(full)
                                for atom in tgd.conclusion
                            )
                            steps += 1
                            progressed = True
                            exhausted = budget.charge(
                                "sql_chase", facts=len(store), nulls=minted_total
                            )
                            if exhausted is not None:
                                break
                        if exhausted is not None:
                            break
                if not progressed and exhausted is None:
                    break
            conn.execute(f"DROP TABLE IF EXISTS {TRIGGER_TABLE}")
            if exhausted is not None:
                report_exhaustion(tracer, exhausted)
                if budget.limits.raises:
                    budget.raise_exhausted()
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        for r in readers:
            store.close_reader(r)

    return SqlChaseResult(
        store=store,
        steps=steps,
        rounds=rounds,
        generated_count=added_total,
        compiled=len(compiled),
        fallback=len(fallback),
        exhausted=exhausted,
        delta_sizes=tuple(delta_sizes),
        triggers_considered=considered_total,
        evaluation=evaluation,
        jobs=jobs,
    )
