"""Mapping → SQL plan compiler: the set-at-a-time chase.

"Laconic schema mappings" (ten Cate, Chiticariu, Kolaitis, Tan) shows
that for broad mapping classes the chase underpinning data exchange can
be compiled to SQL and run set-at-a-time instead of trigger-by-trigger.
This module does that for the **non-disjunctive tgd fragment**: each
plain or inequality-guarded :class:`~repro.logic.dependencies.Tgd`
becomes one ``INSERT ... SELECT`` per conclusion atom, executed inside
a :class:`~repro.store.SqliteStore`:

* the **trigger query** joins the premise atoms (shared variables become
  equi-join conditions, constants become parameters, inequality guards
  become ``<>`` predicates on the encoded cells — sound because the
  value encoding is injective, and ``Constant`` guards become prefix
  tests on the encoding's type tag: a cell holds a null exactly when
  it starts with ``'n:'``) and keeps the ``DISTINCT`` frontier
  assignments with no witness, via ``NOT EXISTS`` over the joined
  conclusion atoms — exactly the restricted-chase firing condition;
* triggers land in a temp table whose ``rowid`` (1..n, assigned in
  insertion order by ``CREATE TABLE AS``) numbers them, so existential
  nulls are minted *inside SQL* as ``'n:' || prefix || (base + (rowid-1)*K + j)``
  — deterministic, collision-free, no per-row Python;
* one ``INSERT OR IGNORE ... SELECT`` per conclusion atom then fires
  every trigger at once.

Dependencies outside the fragment (guard kinds a future dialect might
add) **fall back per round** to the tuple-at-a-time
chase — premise matching runs against the store through the ordinary
:func:`~repro.logic.matching.match_atoms` protocol — so a mixed
dependency set still reaches the same fixpoint.  Disjunctive tgds are
rejected outright, mirroring :func:`repro.chase.standard.chase`.

Result caveat: a SQL chase reaches the same fixpoint as the in-memory
restricted chase *up to null renaming* (hom-equivalent); for **full**
tgds no nulls are minted and the result is fact-for-fact identical —
that is what CI's store-smoke diff pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..terms import Const, Null, Var
from ..logic.atoms import Atom
from ..logic.dependencies import Dependency, Tgd
from ..logic.guards import ConstantGuard, Guard, Inequality
from .sqlite import SqliteStore, encode_value

__all__ = [
    "CompiledTgd",
    "SqlChaseResult",
    "SqlPlanError",
    "compile_tgd",
    "in_sql_fragment",
    "sql_chase",
]

#: Name of the per-statement temp table holding the current trigger set.
TRIGGER_TABLE = "_sqlchase_trig"

#: Param-plan sentinels, replaced at execution time (see CompiledTgd).
PREFIX = object()
BASE = object()


class SqlPlanError(ReproError):
    """A dependency cannot be executed by the SQL chase at all."""


def in_sql_fragment(dep: Dependency) -> bool:
    """True when *dep* compiles to a SQL plan (no per-round fallback).

    The fragment is: non-disjunctive tgds whose guards are all
    inequalities or ``Constant`` guards.  Inequalities compare encoded
    cells (sound because the encoding is injective); ``Constant``
    guards probe the *type* of a value, which the tagged encoding makes
    a prefix test — a cell is a null exactly when it starts with
    ``'n:'`` (constants encode as ``'i:'``/``'s:'``).  Guard kinds
    outside the dialect route the dependency to the tuple fallback.
    """
    return isinstance(dep, Tgd) and all(
        isinstance(g, (Inequality, ConstantGuard)) for g in dep.guards
    )


@dataclass(frozen=True)
class CompiledTgd:
    """One tgd's SQL plan: trigger query + per-conclusion-atom inserts.

    ``trigger_sql``/``trigger_params`` build the trigger temp table;
    ``inserts`` holds ``(sql, param_plan)`` pairs whose statements
    select from it.  A *param_plan* lists the statement's positional
    parameters in placeholder order: encoded literal cells verbatim,
    plus the :data:`PREFIX`/:data:`BASE` sentinels that the executor
    replaces with the null prefix and the round's minting base.
    """

    tgd: Tgd
    index: int
    frontier: Tuple[Var, ...]
    existentials: Tuple[Var, ...]
    trigger_sql: str
    trigger_params: Tuple[str, ...]
    inserts: Tuple[Tuple[str, Tuple[object, ...]], ...]


def _compile_premise(
    tgd: Tgd, resolve: Dict[str, Tuple[str, int]]
) -> Tuple[List[str], List[str], List[str], Dict[Var, str]]:
    """FROM items, WHERE conditions, parameters, and var→column map."""
    from_items: List[str] = []
    conds: List[str] = []
    params: List[str] = []
    var_col: Dict[Var, str] = {}
    for i, atom in enumerate(tgd.premise):
        tbl, _ = resolve[atom.relation]
        alias = f"t{i}"
        from_items.append(f"{tbl} AS {alias}")
        for j, term in enumerate(atom.terms):
            col = f"{alias}.c{j}"
            if isinstance(term, Const):
                conds.append(f"{col} = ?")
                params.append(encode_value(term))
            else:
                bound = var_col.get(term)
                if bound is None:
                    var_col[term] = col
                else:
                    conds.append(f"{col} = {bound}")
    return from_items, conds, params, var_col


def _guard_condition(
    guard: Guard, var_col: Dict[Var, str], params: List[str]
) -> str:
    """A fragment guard as a SQL predicate on encoded cells.

    Inequalities become ``<>`` between encoded cells/parameters;
    ``Constant`` guards become the type-tag prefix test
    ``SUBSTR(cell, 1, 2) <> 'n:'`` (a guard on a literal constant is
    trivially true and compiles to ``1 = 1``).
    """
    if isinstance(guard, ConstantGuard):
        if isinstance(guard.term, Const):
            return "1 = 1"
        return f"SUBSTR({var_col[guard.term]}, 1, 2) <> 'n:'"
    assert isinstance(guard, Inequality)
    sides = []
    for term in (guard.left, guard.right):
        if isinstance(term, Const):
            sides.append("?")
            params.append(encode_value(term))
        else:
            sides.append(var_col[term])
    return f"{sides[0]} <> {sides[1]}"


def _witness_subquery(
    tgd: Tgd,
    resolve: Dict[str, Tuple[str, int]],
    var_col: Dict[Var, str],
    params: List[str],
) -> str:
    """``EXISTS``-body joining the conclusion atoms (restricted check).

    Frontier variables correlate with the outer premise columns;
    existential variables join freely inside the subquery — precisely
    "the conclusion is witnessed by some extension of the frontier
    binding".
    """
    from_items: List[str] = []
    conds: List[str] = []
    sub_col: Dict[Var, str] = {}
    for i, atom in enumerate(tgd.conclusion):
        tbl, _ = resolve[atom.relation]
        alias = f"s{i}"
        from_items.append(f"{tbl} AS {alias}")
        for j, term in enumerate(atom.terms):
            col = f"{alias}.c{j}"
            if isinstance(term, Const):
                conds.append(f"{col} = ?")
                params.append(encode_value(term))
            elif term in var_col:  # frontier: correlate with the outer row
                conds.append(f"{col} = {var_col[term]}")
            else:  # existential: free join variable inside the subquery
                bound = sub_col.get(term)
                if bound is None:
                    sub_col[term] = col
                else:
                    conds.append(f"{col} = {bound}")
    where = f" WHERE {' AND '.join(conds)}" if conds else ""
    return f"SELECT 1 FROM {', '.join(from_items)}{where}"


def compile_tgd(
    tgd: Tgd, index: int, resolve: Dict[str, Tuple[str, int]]
) -> Optional[CompiledTgd]:
    """Compile one tgd against the store's table catalog.

    Returns ``None`` when the dependency is outside the SQL fragment
    (the caller then routes it to the per-round tuple fallback).
    *resolve* maps every premise/conclusion relation to its
    ``(table, arity)`` — the caller ensures the tables exist.
    """
    if not in_sql_fragment(tgd):
        return None
    frontier = tuple(sorted(tgd.frontier))
    existentials = tuple(sorted(tgd.existential_variables))

    from_items, conds, params, var_col = _compile_premise(tgd, resolve)
    for guard in tgd.guards:
        conds.append(_guard_condition(guard, var_col, params))
    conds.append(f"NOT EXISTS ({_witness_subquery(tgd, resolve, var_col, params)})")

    if frontier:
        select = ", ".join(
            f"{var_col[v]} AS f{i}" for i, v in enumerate(frontier)
        )
    else:
        select = "1 AS f_dummy"
    trigger_sql = (
        f"SELECT DISTINCT {select} FROM {', '.join(from_items)} "
        f"WHERE {' AND '.join(conds)}"
    )

    frontier_pos = {v: i for i, v in enumerate(frontier)}
    exist_pos = {v: j for j, v in enumerate(existentials)}
    stride = max(len(existentials), 1)
    inserts: List[Tuple[str, Tuple[object, ...]]] = []
    for atom in tgd.conclusion:
        tbl, _ = resolve[atom.relation]
        exprs: List[str] = []
        param_plan: List[object] = []
        for term in atom.terms:
            if isinstance(term, Const):
                exprs.append("?")
                param_plan.append(encode_value(term))
            elif term in frontier_pos:
                exprs.append(f"f{frontier_pos[term]}")
            else:
                # Fresh null: base + (rowid-1)*stride + position, named in
                # SQL.  `?` slots for (prefix, base) are filled per round.
                j = exist_pos[term]
                exprs.append(
                    "'n:' || ? || (? + "
                    f"({TRIGGER_TABLE}.rowid - 1) * {stride} + {j})"
                )
                param_plan.extend((PREFIX, BASE))
        inserts.append(
            (
                f"INSERT OR IGNORE INTO {tbl} "
                f"SELECT {', '.join(exprs)} FROM {TRIGGER_TABLE}",
                tuple(param_plan),
            )
        )
    return CompiledTgd(
        tgd=tgd,
        index=index,
        frontier=frontier,
        existentials=existentials,
        trigger_sql=trigger_sql,
        trigger_params=tuple(params),
        inserts=tuple(inserts),
    )


@dataclass(frozen=True)
class SqlChaseResult:
    """Outcome of a SQL chase run over a :class:`SqliteStore`.

    Mirrors :class:`repro.chase.standard.ChaseResult` where it can;
    ``generated_count`` replaces the materialized ``generated`` set (the
    point of this backend is not to materialize), and ``compiled`` /
    ``fallback`` report how the dependency set split across the two
    execution regimes.
    """

    store: SqliteStore
    steps: int
    rounds: int
    generated_count: int
    compiled: int
    fallback: int
    exhausted: Optional[object] = None

    @property
    def completed(self) -> bool:
        """True when the chase reached its fixpoint within budget."""
        return self.exhausted is None

    @property
    def instance(self):
        """The chased store, frozen and wrapped as an ``Instance``."""
        return self.store.as_instance()


def _null_base(store: SqliteStore, prefix: str) -> int:
    """First integer suffix that avoids every existing ``prefix<int>`` null."""
    base = 0
    for null in store.nulls():
        if null.name.startswith(prefix):
            suffix = null.name[len(prefix):]
            if suffix.isdigit():
                base = max(base, int(suffix) + 1)
    return base


def sql_chase(
    store: SqliteStore,
    dependencies: Sequence[Dependency],
    *,
    null_prefix: str = "N",
    tracer=None,
    limits=None,
    budget=None,
) -> SqlChaseResult:
    """Run the restricted chase set-at-a-time inside *store*.

    Compilable dependencies execute as ``INSERT ... SELECT`` plans; the
    rest fall back, per round, to tuple-at-a-time matching against the
    store (same fixpoint, slower).  Resource governance matches
    :func:`repro.chase.standard.chase`: pass ``limits`` or a shared
    ``budget``; with neither, the ambient budget or the 64-round
    non-termination guard applies, and exhaustion either raises or
    returns a tagged partial result per ``Limits.on_exhausted``.

    Provenance note: the SQL path fires whole trigger *sets*, so no
    per-trigger ``TriggerFired`` events are emitted — set-at-a-time
    throughput trades away per-fact provenance.  Budget heartbeats and
    exhaustion events still flow to the tracer/reporter as usual.
    """
    # Imported here, not at module top: chase.standard sits *above* the
    # store package in the layer map (it imports the Instance facade).
    from ..chase.standard import (
        DEFAULT_MAX_ROUNDS,
        _LEGACY_LIMITS,
        _conclusion_satisfied,
        report_exhaustion,
        resolve_budget,
    )
    from ..logic.matching import match_atoms
    from ..obs.tracer import current_tracer, maybe_span

    tgds: List[Tgd] = []
    for dep in dependencies:
        if not isinstance(dep, Tgd):
            raise SqlPlanError(
                f"sql_chase handles plain tgds only, got {dep!r}; "
                "use disjunctive_chase for disjunctive dependencies"
            )
        tgds.append(dep)
    if store.frozen:
        raise SqlPlanError("cannot chase into a frozen store")
    if tracer is None:
        tracer = current_tracer()
    budget = resolve_budget(
        limits, budget, _LEGACY_LIMITS, fallback_rounds=DEFAULT_MAX_ROUNDS
    )

    resolve: Dict[str, Tuple[str, int]] = {}
    for tgd in tgds:
        for atom in tuple(tgd.premise) + tuple(tgd.conclusion):
            resolve[atom.relation] = store.ensure_relation(
                atom.relation, atom.arity
            )

    compiled: List[CompiledTgd] = []
    fallback: List[Tuple[int, Tgd]] = []
    for index, tgd in enumerate(tgds):
        plan = compile_tgd(tgd, index, resolve)
        if plan is None:
            fallback.append((index, tgd))
        else:
            compiled.append(plan)

    conn = store.connection
    next_null = _null_base(store, null_prefix)
    steps = 0
    rounds = 0
    minted_total = 0
    added_total = 0
    exhausted = None

    with maybe_span(
        tracer, "sql_chase", compiled=len(compiled), fallback=len(fallback)
    ):
        while exhausted is None:
            rounds += 1
            exhausted = budget.start_round("sql_chase")
            if exhausted is not None:
                rounds -= 1
                break
            progressed = False
            for plan in compiled:
                conn.execute(f"DROP TABLE IF EXISTS {TRIGGER_TABLE}")
                conn.execute(
                    f"CREATE TEMP TABLE {TRIGGER_TABLE} AS {plan.trigger_sql}",
                    plan.trigger_params,
                )
                (n,) = conn.execute(
                    f"SELECT COUNT(*) FROM {TRIGGER_TABLE}"
                ).fetchone()
                if n == 0:
                    continue
                stride = len(plan.existentials)
                added = 0
                for insert_sql, param_plan in plan.inserts:
                    params = tuple(
                        null_prefix
                        if p is PREFIX
                        else next_null
                        if p is BASE
                        else p
                        for p in param_plan
                    )
                    cur = conn.execute(insert_sql, params)
                    added += max(cur.rowcount, 0)
                next_null += n * stride
                minted_total += n * stride
                steps += n
                added_total += added
                progressed = True
                store._count = None  # inserts bypassed the add() counter
                exhausted = budget.charge(
                    "sql_chase", facts=len(store), nulls=minted_total
                )
                if exhausted is not None:
                    break
            if exhausted is None:
                for index, tgd in fallback:
                    bindings = list(
                        match_atoms(tgd.premise, store, tgd.guards)
                    )
                    for binding in bindings:
                        if _conclusion_satisfied(tgd, binding, store):
                            continue
                        full = dict(binding)
                        for var in sorted(tgd.existential_variables):
                            full[var] = Null(f"{null_prefix}{next_null}")
                            next_null += 1
                            minted_total += 1
                        added_total += store.add_all(
                            atom.instantiate(full) for atom in tgd.conclusion
                        )
                        steps += 1
                        progressed = True
                        exhausted = budget.charge(
                            "sql_chase", facts=len(store), nulls=minted_total
                        )
                        if exhausted is not None:
                            break
                    if exhausted is not None:
                        break
            if not progressed and exhausted is None:
                break
        conn.execute(f"DROP TABLE IF EXISTS {TRIGGER_TABLE}")
        if exhausted is not None:
            report_exhaustion(tracer, exhausted)
            if budget.limits.raises:
                budget.raise_exhausted()

    return SqlChaseResult(
        store=store,
        steps=steps,
        rounds=rounds,
        generated_count=added_total,
        compiled=len(compiled),
        fallback=len(fallback),
        exhausted=exhausted,
    )
