"""Pluggable fact storage: the ``InstanceStore`` protocol and backends.

``Instance`` is a thin facade over a store.  Three backends ship:

* :class:`MemoryStore` — the historical in-heap representation
  (default; extracted from the pre-store ``Instance`` internals);
* :class:`SqliteStore` — one SQLite table per relation, for instances
  that should not live in the Python heap and for the set-at-a-time
  SQL chase (:func:`sql_chase` in :mod:`repro.store.sqlplan`);
* :class:`DuckDbStore` — the same relational layout on DuckDB's
  columnar engine (optional dependency; :func:`duckdb_available`
  reports whether the wheel is installed).

Use :func:`open_store` to construct a backend from a CLI-style spec
string: ``memory``, ``sqlite`` (in-memory database),
``sqlite:/path/to.db``, ``duckdb``, or ``duckdb:/path/to.db``.  See
``docs/STORES.md`` for the backend × chase-strategy matrix and the
SQL-chase fragment/fallback rules.

``sql_chase`` and friends are re-exported lazily: the plan compiler
imports the chase layer, which sits above this package, so an eager
import here would cycle.
"""

from __future__ import annotations

from .base import InstanceStore, StoreError
from .duckdb import DuckDbStore, duckdb_available
from .memory import MemoryStore
from .sqlbase import SqlStoreBase
from .sqlite import SqliteStore, decode_value, encode_value

__all__ = [
    "DuckDbStore",
    "InstanceStore",
    "MemoryStore",
    "SqlStoreBase",
    "SqliteStore",
    "StoreError",
    "CompiledTgd",
    "SqlChaseResult",
    "SqlPlanError",
    "compile_tgd",
    "decode_value",
    "duckdb_available",
    "encode_value",
    "in_sql_fragment",
    "open_store",
    "sql_chase",
]

#: Names resolved lazily from repro.store.sqlplan (PEP 562) — the plan
#: compiler imports layers above this package.
_SQLPLAN_NAMES = {
    "CompiledTgd",
    "SqlChaseResult",
    "SqlPlanError",
    "compile_tgd",
    "in_sql_fragment",
    "sql_chase",
}


def __getattr__(name: str):
    if name in _SQLPLAN_NAMES:
        from . import sqlplan

        return getattr(sqlplan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def open_store(spec: str, *, fresh: bool = False):
    """Build a store from a spec string (the CLI's ``--store`` values).

    ``memory`` → :class:`MemoryStore`; ``sqlite`` → in-memory SQLite;
    ``sqlite:<path>`` → SQLite at *path* (``fresh=True`` recreates it);
    ``duckdb`` / ``duckdb:<path>`` → the same on DuckDB (raises
    :class:`StoreError` when the optional wheel is absent).
    """
    if spec == "memory":
        return MemoryStore()
    if spec == "sqlite":
        return SqliteStore(":memory:")
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
        if not path:
            return SqliteStore(":memory:")
        return SqliteStore(path, fresh=fresh)
    if spec == "duckdb":
        return DuckDbStore(":memory:")
    if spec.startswith("duckdb:"):
        path = spec[len("duckdb:"):]
        if not path:
            return DuckDbStore(":memory:")
        return DuckDbStore(path, fresh=fresh)
    raise ValueError(
        f"unknown store spec {spec!r}; expected 'memory', 'sqlite', "
        "'sqlite:<path>', 'duckdb', or 'duckdb:<path>'"
    )
