"""The ``InstanceStore`` protocol: what a fact backend must provide.

Every layer above the instance core — premise matching, both chases,
hom search, the engine cache — already talks to fact storage through a
narrow surface: per-relation tuple iteration, the position-indexed
``tuples_at`` candidate lookup that :func:`repro.logic.matching._candidates`
duck-types, membership, and digesting.  This module names that surface
so it can be implemented twice: :class:`~repro.store.MemoryStore`
(the historical in-heap representation, extracted from ``Instance``)
and :class:`~repro.store.SqliteStore` (one table per relation, scaling
past the Python heap).

A store has a two-phase life cycle:

1. **mutable** — ``add``/``add_all`` accept facts and deduplicate;
2. **frozen** — after :meth:`InstanceStore.freeze`, mutation raises and
   the store may back an immutable :class:`~repro.instance.Instance`.

Freezing is one-way.  ``Instance`` only ever wraps frozen stores, which
is what keeps its hash/equality/digest semantics sound.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Collection,
    FrozenSet,
    Iterable,
    Iterator,
    Sequence,
    Tuple,
)

try:  # Python 3.8+: typing.Protocol is available everywhere we support
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from ..errors import ReproError
from ..facts import Fact
from ..terms import Null, Value

if TYPE_CHECKING:  # avoid the instance<->store import cycle at runtime
    from ..instance import Instance


class StoreError(ReproError):
    """A backend rejected an operation (frozen store, arity clash, ...)."""


@runtime_checkable
class InstanceStore(Protocol):
    """Protocol every fact backend implements.

    The matching layer consumes only ``tuples``/``tuples_at`` (duck
    typed); the facade consumes the rest.  Implementations must agree
    on semantics exactly:

    * ``add`` deduplicates and reports whether the fact was new;
    * ``digest`` equals :func:`repro.facts.digest_facts` of the fact
      set, independent of insertion order and backend;
    * ``freeze`` is idempotent and one-way.
    """

    def add(self, f: Fact) -> bool:
        """Insert one fact; return True when it was new."""
        ...

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; return how many were new."""
        ...

    def relation_names(self) -> Tuple[str, ...]:
        """Sorted names of relations holding at least one fact."""
        ...

    def tuples(self, relation: str) -> Collection[Tuple[Value, ...]]:
        """All tuples of *relation* (empty collection when absent)."""
        ...

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Sequence[Tuple[Value, ...]]:
        """Tuples of *relation* carrying *value* at *position*."""
        ...

    def facts(self) -> Iterator[Fact]:
        """Iterate every fact (no order guarantee)."""
        ...

    def fact_set(self) -> FrozenSet[Fact]:
        """The facts as a frozen set (materializes for disk backends)."""
        ...

    def __len__(self) -> int:
        """Number of facts."""
        ...

    def __contains__(self, f: object) -> bool:
        """Fact membership."""
        ...

    def active_domain(self) -> FrozenSet[Value]:
        """Every value occurring in some fact."""
        ...

    def nulls(self) -> FrozenSet[Null]:
        """Every labeled null occurring in some fact."""
        ...

    def digest(self) -> str:
        """Content digest (hex SHA-256); backend- and order-independent."""
        ...

    def freeze(self) -> None:
        """Make the store immutable (idempotent; mutation then raises)."""
        ...

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has run."""
        ...

    def snapshot(self) -> "Instance":
        """A frozen in-memory :class:`Instance` of the current contents."""
        ...

    def close(self) -> None:
        """Release backend resources (no-op for in-memory stores)."""
        ...


def check_mutable(store: InstanceStore) -> None:
    """Raise :class:`StoreError` when *store* is frozen."""
    if store.frozen:
        raise StoreError(
            f"{type(store).__name__} is frozen; "
            "build a new store instead of mutating a snapshot"
        )
