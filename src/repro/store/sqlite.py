"""SQLite-backed fact store: one table per relation, tagged values.

``SqliteStore`` keeps facts out of the Python heap, which is what lets
the chase scale past in-memory instances (see ``benchmarks/bench_store.py``)
and gives the SQL plan compiler in :mod:`repro.store.sqlplan` something
to push ``INSERT ... SELECT`` statements into.  The design reuses the
SQLite conventions proven out by :mod:`repro.obs.registry` (SQL kept in
module-level schema strings, ``CREATE TABLE IF NOT EXISTS``, explicit
indexes) but holds one long-lived connection instead of per-call
connections: a store is scratch/working state for a single chase, not a
durable multi-process registry, and temp tables plus bulk transactions
need connection affinity.

All the dialect-independent machinery — the ``_catalog``, the tagged
value encoding, the matching protocol, the streaming digest — lives in
:class:`repro.store.sqlbase.SqlStoreBase`, shared with the DuckDB
backend; this module adds only what is SQLite-specific:

* pragmas tuned for scratch state (``synchronous=OFF``,
  ``journal_mode=MEMORY``) on an autocommit connection;
* per-relation-table DDL: a unique *index* over all columns (the
  ``INSERT OR IGNORE`` dedup target) plus a secondary index per
  non-leading column for the ``tuples_at`` candidate lookups;
* reader connections for the sharded SQL chase.  On-disk stores just
  open the path again; ``:memory:`` stores are backed by a uniquely
  named shared-cache database (``file:...?mode=memory&cache=shared``)
  so that additional connections can see the same data — without the
  URI, every ``:memory:`` connection is a separate database.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
from typing import List, Optional

from .sqlbase import SqlStoreBase, decode_value, encode_value

__all__ = ["SqliteStore", "decode_value", "encode_value"]

#: Distinguishes the shared-cache databases of in-memory stores living
#: in the same process (the URI *is* the database identity).
_MEM_IDS = itertools.count()


class SqliteStore(SqlStoreBase):
    """Facts in a SQLite database (``:memory:`` or on disk).

    Satisfies the full :class:`~repro.store.InstanceStore` protocol, so
    premise matching, the chases, and the ``Instance`` facade run
    against it unmodified.  Pass a filesystem *path* to spill past RAM;
    ``fresh=True`` drops any prior contents at that path first.
    """

    dialect = "sqlite"

    def __init__(self, path: str = ":memory:", *, fresh: bool = False) -> None:
        """Open (or create) the store at *path*."""
        self._memory_uri: Optional[str] = None
        if path == ":memory:":
            self._memory_uri = (
                f"file:repro-store-{os.getpid()}-{next(_MEM_IDS)}"
                "?mode=memory&cache=shared"
            )
        super().__init__(path, fresh=fresh)

    def _connect(self, path: str) -> sqlite3.Connection:
        if self._memory_uri is not None:
            try:
                conn = sqlite3.connect(
                    self._memory_uri, uri=True, check_same_thread=False
                )
            except sqlite3.Error:
                # Shared-cache support can be compiled out; fall back to
                # a plain private in-memory database (reader connections
                # are then unavailable and sharded rounds run serially).
                self._memory_uri = None
                conn = sqlite3.connect(path, check_same_thread=False)
        else:
            conn = sqlite3.connect(path, check_same_thread=False)
        conn.isolation_level = None  # autocommit; bulk ops BEGIN explicitly
        return conn

    def _configure(self) -> None:
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA journal_mode=MEMORY")

    def _table_names(self) -> List[str]:
        return [
            name
            for (name,) in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            ).fetchall()
        ]

    def _create_relation_table(self, tbl: str, arity: int) -> None:
        cols = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        self._conn.execute(f"CREATE TABLE {tbl} ({cols})")
        all_cols = ", ".join(f"c{i}" for i in range(arity))
        self._conn.execute(
            f"CREATE UNIQUE INDEX {tbl}_row ON {tbl} ({all_cols})"
        )
        for i in range(1, arity):
            self._conn.execute(f"CREATE INDEX {tbl}_c{i} ON {tbl} (c{i})")

    def reader_connection(self) -> Optional[sqlite3.Connection]:
        """A second connection onto the same database, for shard reads.

        ``None`` for plain private ``:memory:`` stores (nothing else can
        attach to those) — the sharded chase then evaluates its shards
        serially on the main connection.
        """
        if self._memory_uri is not None:
            conn = sqlite3.connect(
                self._memory_uri, uri=True, check_same_thread=False
            )
        elif self._path != ":memory:":
            conn = sqlite3.connect(self._path, check_same_thread=False)
        else:
            return None
        conn.isolation_level = None
        conn.execute("PRAGMA query_only=ON")
        return conn
