"""SQLite-backed fact store: one table per relation, tagged values.

``SqliteStore`` keeps facts out of the Python heap, which is what lets
the chase scale past in-memory instances (see ``benchmarks/bench_store.py``)
and gives the SQL plan compiler in :mod:`repro.store.sqlplan` something
to push ``INSERT ... SELECT`` statements into.  The design reuses the
SQLite conventions proven out by :mod:`repro.obs.registry` (SQL kept in
module-level schema strings, ``CREATE TABLE IF NOT EXISTS``, explicit
indexes) but holds one long-lived connection instead of per-call
connections: a store is scratch/working state for a single chase, not a
durable multi-process registry, and temp tables plus bulk transactions
need connection affinity.

Layout
------

* ``_catalog(relation, tbl, arity)`` maps relation names (data, may
  contain any character — the paper uses names like ``P'``) to
  generated table names ``r0, r1, ...`` (identifiers, always safe).
* Each relation table has TEXT columns ``c0..c{arity-1}``, a unique
  index over all columns (set semantics / ``INSERT OR IGNORE`` dedup)
  and a secondary index per non-leading column (the ``tuples_at``
  candidate lookups).
* Values are encoded as tagged text — ``i:<int>``, ``s:<str>``,
  ``n:<null-name>`` — mirroring the type tags of
  :func:`repro.facts.digest_value` so distinct values never collide.

The digest is computed *streamingly*: one relation at a time, rows
sorted in Python by the value sort key, fed to
:class:`repro.facts.FactDigest`.  Because the relation name leads the
fact sort key and relations are visited in sorted-name order, this
equals the digest of the globally sorted fact set — byte-identical to
``MemoryStore`` and to the pre-store ``Instance.digest()``.
"""

from __future__ import annotations

import sqlite3
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..facts import Fact, FactDigest
from ..terms import Const, Null, Value
from .base import StoreError

if TYPE_CHECKING:
    from ..instance import Instance

_CATALOG_SCHEMA = """
CREATE TABLE IF NOT EXISTS _catalog (
    relation TEXT PRIMARY KEY,
    tbl      TEXT NOT NULL UNIQUE,
    arity    INTEGER NOT NULL
);
"""


def encode_value(value: Value) -> str:
    """Encode one value as tagged text for a column cell."""
    if isinstance(value, Const):
        payload = value.value
        if isinstance(payload, int) and not isinstance(payload, bool):
            return f"i:{payload}"
        return f"s:{payload}"
    if isinstance(value, Null):
        return f"n:{value.name}"
    raise TypeError(f"cannot store non-value {value!r}")


def decode_value(cell: str) -> Value:
    """Invert :func:`encode_value`."""
    tag, payload = cell[0], cell[2:]
    if tag == "i":
        return Const(int(payload))
    if tag == "s":
        return Const(payload)
    if tag == "n":
        return Null(payload)
    raise ValueError(f"unknown value tag in cell {cell!r}")


class SqliteStore:
    """Facts in a SQLite database (``:memory:`` or on disk).

    Satisfies the full :class:`~repro.store.InstanceStore` protocol, so
    premise matching, the chases, and the ``Instance`` facade run
    against it unmodified.  Pass a filesystem *path* to spill past RAM;
    ``fresh=True`` drops any prior contents at that path first.
    """

    def __init__(self, path: str = ":memory:", *, fresh: bool = False) -> None:
        """Open (or create) the store at *path*."""
        self._path = path
        self._conn = sqlite3.connect(path)
        self._conn.isolation_level = None  # autocommit; bulk ops BEGIN explicitly
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        if fresh:
            self._drop_all()
        self._conn.execute(_CATALOG_SCHEMA)
        self._tables: Dict[str, Tuple[str, int]] = {
            relation: (tbl, arity)
            for relation, tbl, arity in self._conn.execute(
                "SELECT relation, tbl, arity FROM _catalog"
            )
        }
        self._count: Optional[int] = None
        self._frozen = False

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def _drop_all(self) -> None:
        rows = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        ).fetchall()
        for (name,) in rows:
            self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')

    def ensure_relation(self, relation: str, arity: int) -> Tuple[str, int]:
        """Create (or fetch) the table for *relation*; returns (tbl, arity).

        A relation has one fixed arity per store — reusing a name at a
        different arity raises :class:`~repro.store.StoreError` (the
        in-memory representation tolerates this; the relational layout
        cannot).
        """
        known = self._tables.get(relation)
        if known is not None:
            if known[1] != arity:
                raise StoreError(
                    f"relation {relation!r} already stored at arity {known[1]}, "
                    f"cannot also use arity {arity}"
                )
            return known
        tbl = f"r{len(self._tables)}"
        cols = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        self._conn.execute(f"CREATE TABLE {tbl} ({cols})")
        all_cols = ", ".join(f"c{i}" for i in range(arity))
        self._conn.execute(
            f"CREATE UNIQUE INDEX {tbl}_row ON {tbl} ({all_cols})"
        )
        for i in range(1, arity):
            self._conn.execute(f"CREATE INDEX {tbl}_c{i} ON {tbl} (c{i})")
        self._conn.execute(
            "INSERT INTO _catalog (relation, tbl, arity) VALUES (?, ?, ?)",
            (relation, tbl, arity),
        )
        self._tables[relation] = (tbl, arity)
        return (tbl, arity)

    def table_for(self, relation: str) -> Optional[Tuple[str, int]]:
        """(table name, arity) for *relation*, or None when absent."""
        return self._tables.get(relation)

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (the SQL chase executes on it)."""
        return self._conn

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise StoreError(
                "SqliteStore is frozen; build a new store instead of "
                "mutating a snapshot"
            )

    def add(self, f: Fact) -> bool:
        """Insert one fact; return True when it was new."""
        self._check_mutable()
        if not isinstance(f, Fact):
            raise TypeError(f"expected Fact, got {f!r}")
        tbl, arity = self.ensure_relation(f.relation, f.arity)
        placeholders = ", ".join("?" for _ in range(arity))
        cur = self._conn.execute(
            f"INSERT OR IGNORE INTO {tbl} VALUES ({placeholders})",
            tuple(encode_value(v) for v in f.values),
        )
        added = cur.rowcount > 0
        if added and self._count is not None:
            self._count += 1
        return added

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Bulk insert inside one transaction; return how many were new."""
        self._check_mutable()
        before = self._conn.total_changes
        tables_before = len(self._tables)
        self._conn.execute("BEGIN")
        try:
            for f in facts:
                if not isinstance(f, Fact):
                    raise TypeError(f"expected Fact, got {f!r}")
                tbl, arity = self.ensure_relation(f.relation, f.arity)
                placeholders = ", ".join("?" for _ in range(arity))
                self._conn.execute(
                    f"INSERT OR IGNORE INTO {tbl} VALUES ({placeholders})",
                    tuple(encode_value(v) for v in f.values),
                )
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")
        # total_changes counts effective row inserts only (OR IGNOREd
        # rows are not changes); subtract the catalog rows written for
        # relations first seen inside this transaction.
        added = (self._conn.total_changes - before) - (
            len(self._tables) - tables_before
        )
        self._count = None
        return max(added, 0)

    # ------------------------------------------------------------------
    # The matching protocol
    # ------------------------------------------------------------------

    def relation_names(self) -> Tuple[str, ...]:
        """Sorted names of relations holding at least one fact."""
        names = []
        for relation, (tbl, _) in self._tables.items():
            row = self._conn.execute(f"SELECT 1 FROM {tbl} LIMIT 1").fetchone()
            if row is not None:
                names.append(relation)
        return tuple(sorted(names))

    def tuples(self, relation: str) -> List[Tuple[Value, ...]]:
        """All tuples of *relation*, decoded (empty list when absent)."""
        known = self._tables.get(relation)
        if known is None:
            return []
        tbl, _ = known
        return [
            tuple(decode_value(cell) for cell in row)
            for row in self._conn.execute(f"SELECT * FROM {tbl}")
        ]

    def tuples_at(
        self, relation: str, position: int, value: Value
    ) -> Tuple[Tuple[Value, ...], ...]:
        """Tuples of *relation* carrying *value* at *position* (indexed)."""
        known = self._tables.get(relation)
        if known is None:
            return ()
        tbl, arity = known
        if not 0 <= position < arity:
            return ()
        rows = self._conn.execute(
            f"SELECT * FROM {tbl} WHERE c{position} = ?",
            (encode_value(value),),
        )
        return tuple(
            tuple(decode_value(cell) for cell in row) for row in rows
        )

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------

    def facts(self) -> Iterator[Fact]:
        """Stream every fact, one relation at a time."""
        for relation in sorted(self._tables):
            tbl, _ = self._tables[relation]
            for row in self._conn.execute(f"SELECT * FROM {tbl}"):
                yield Fact(relation, tuple(decode_value(cell) for cell in row))

    def fact_set(self) -> FrozenSet[Fact]:
        """Materialize the facts as a frozen set (pulls rows into RAM)."""
        return frozenset(self.facts())

    def __len__(self) -> int:
        if self._count is None:
            total = 0
            for tbl, _ in self._tables.values():
                (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {tbl}").fetchone()
                total += n
            self._count = total
        return self._count

    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        known = self._tables.get(f.relation)
        if known is None or known[1] != f.arity:
            return False
        tbl, arity = known
        where = " AND ".join(f"c{i} = ?" for i in range(arity))
        row = self._conn.execute(
            f"SELECT 1 FROM {tbl} WHERE {where} LIMIT 1",
            tuple(encode_value(v) for v in f.values),
        ).fetchone()
        return row is not None

    def active_domain(self) -> FrozenSet[Value]:
        """All values occurring in the store (distinct per column)."""
        values: Set[Value] = set()
        for tbl, arity in self._tables.values():
            for i in range(arity):
                for (cell,) in self._conn.execute(
                    f"SELECT DISTINCT c{i} FROM {tbl}"
                ):
                    values.add(decode_value(cell))
        return frozenset(values)

    def nulls(self) -> FrozenSet[Null]:
        """All labeled nulls occurring in the store."""
        nulls: Set[Null] = set()
        for tbl, arity in self._tables.values():
            for i in range(arity):
                for (cell,) in self._conn.execute(
                    f"SELECT DISTINCT c{i} FROM {tbl} WHERE c{i} LIKE 'n:%'"
                ):
                    nulls.add(Null(cell[2:]))
        return frozenset(nulls)

    def digest(self) -> str:
        """Streaming content digest, byte-identical to ``MemoryStore``.

        Relations are visited in sorted-name order and each relation's
        rows are sorted in Python by the value sort key — equivalent to
        the global fact sort because the relation name leads the fact
        sort key.  (Sorting on the *encoded* text in SQL would be
        unsound: the tag/separator bytes do not preserve the value
        order.)
        """
        acc = FactDigest()
        for relation in sorted(self._tables):
            tbl, _ = self._tables[relation]
            rows = [
                Fact(relation, tuple(decode_value(cell) for cell in row))
                for row in self._conn.execute(f"SELECT * FROM {tbl}")
            ]
            acc.update_sorted(rows)
        return acc.hexdigest()

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has run."""
        return self._frozen

    def freeze(self) -> None:
        """Make the store immutable at the facade level (idempotent)."""
        self._frozen = True

    def as_instance(self) -> "Instance":
        """Freeze and wrap *this* store as an ``Instance`` (no copy)."""
        from ..instance import Instance

        self.freeze()
        return Instance(store=self)

    def snapshot(self) -> "Instance":
        """A frozen in-memory copy of the current contents."""
        from ..instance import Instance

        return Instance(self.facts())

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()
