"""The ``repro`` exception hierarchy.

Every error the library raises deliberately derives from
:class:`ReproError`, so ``except ReproError`` is the one catch-all a
service loop needs.  The stable, supported import paths are::

    from repro.errors import (
        ReproError,            # root of the hierarchy
        BudgetExhausted,       # a resource budget ran out (carries a diagnosis)
        Cancelled,             # a CancelToken fired
        ChaseNonTermination,   # round budget exhausted in "raise" mode
        BatchItemError,        # one item of an engine batch failed
        FaultInjected,         # a deterministic test fault tripped
        WorkerKilled,          # the supervisor hard-killed a hung worker
    )

(the same names are re-exported from the top-level ``repro`` package).

Design notes:

* :class:`BudgetExhausted` subclasses :class:`RuntimeError` because the
  pre-hierarchy guards (``max_rounds``/``max_branches``) raised
  ``RuntimeError`` subclasses; existing ``except RuntimeError`` call
  sites keep working.
* :class:`ChaseNonTermination` subclasses :class:`BudgetExhausted`:
  non-termination *is* exhaustion of the round budget.  Its historical
  import path ``repro.chase.standard.ChaseNonTermination`` remains
  valid (the chase module re-exports it).
* Errors that wrap a budget diagnosis expose it as ``.diagnosis`` — an
  :class:`repro.limits.Exhausted` value naming the resource, where it
  ran out, and how far the computation got.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class BudgetExhausted(ReproError, RuntimeError):
    """A resource budget (deadline, rounds, facts, nulls, branches) ran out.

    Raised only when the governing :class:`repro.limits.Limits` says
    ``on_exhausted="raise"``; in ``"partial"`` mode the chase returns a
    tagged partial result instead.  ``diagnosis`` (when present) is the
    :class:`repro.limits.Exhausted` record of what ran out and where.
    """

    def __init__(self, message: str = "", diagnosis=None) -> None:
        """Describe the exhaustion; *diagnosis* supplies the message."""
        if not message and diagnosis is not None:
            message = diagnosis.describe()
        super().__init__(message)
        self.diagnosis = diagnosis


class Cancelled(BudgetExhausted):
    """A :class:`repro.limits.CancelToken` was cancelled mid-operation."""


class ChaseNonTermination(BudgetExhausted):
    """The chase exceeded its round budget without reaching a fixpoint."""


class FaultInjected(ReproError):
    """A deterministic fault from a :class:`repro.limits.FaultPlan` tripped.

    Simulates a transient worker crash: the engine's retry policy treats
    it as retryable, so a fault with ``times=1`` and ``retries>=1``
    succeeds on the second attempt.
    """

    def __init__(self, message: str = "injected fault", item: int = -1) -> None:
        """Tag the injected failure with the batch *item* it hit."""
        super().__init__(message)
        self.item = item


class WorkerKilled(ReproError):
    """A supervised pool worker was hard-killed after going silent.

    Raised (as a batch item's error) by the worker supervisor
    (:mod:`repro.engine.supervisor`) when a worker's heartbeat stayed
    stale for more than ``Limits.grace`` seconds past its cooperative
    deadline and escalation — cooperative cancel, then
    ``Process.terminate()`` — had to end it.  Treated as *transient* by
    the retry policy: a retried item is respawned in a fresh worker
    with the remaining deadline.

    Attributes
    ----------
    item:
        The batch index of the killed item (``-1`` when unknown).
    pid:
        OS process id of the terminated worker (``None`` when it never
        started).
    diagnosis:
        The :class:`repro.limits.Exhausted` record (``resource=
        "killed"``) describing how long the heartbeat had been stale.
    """

    def __init__(
        self,
        message: str = "",
        item: int = -1,
        pid: Optional[int] = None,
        diagnosis=None,
    ) -> None:
        if not message and diagnosis is not None:
            message = diagnosis.describe()
        super().__init__(message or "supervised worker hard-killed")
        self.item = item
        self.pid = pid
        self.diagnosis = diagnosis


class BatchItemError(ReproError):
    """One item of an engine batch failed; the rest of the batch survived.

    Appears *in the result list* of ``chase_many``/``reverse_many`` when
    ``on_error="skip"``: each failed item resolves to one of these in
    its input position instead of poisoning the whole batch.

    Attributes
    ----------
    index:
        The item's position in the input batch.
    op:
        The engine operation (``"chase"`` or ``"reverse"``).
    kind:
        Failure kind: the class name of the underlying exception, or
        the explicit override passed by the runner (the supervisor
        reports hard-killed items as ``kind="killed"``).
    error:
        The underlying exception object.
    attempts:
        How many attempts were made (> 1 when a retry policy re-ran it).
    elapsed:
        Wall-clock seconds the item consumed across all its attempts
        (``0.0`` when the runner could not measure it).
    diagnosis:
        The :class:`repro.limits.Exhausted` record when the failure was
        a budget exhaustion, else ``None``.
    """

    def __init__(
        self,
        index: int,
        op: str,
        error: BaseException,
        attempts: int = 1,
        diagnosis=None,
        elapsed: float = 0.0,
        kind: Optional[str] = None,
    ) -> None:
        super().__init__(
            f"{op} batch item {index} failed after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: "
            f"{type(error).__name__}: {error}"
        )
        self.index = index
        self.op = op
        self.error = error
        self.kind = kind if kind is not None else type(error).__name__
        self.attempts = attempts
        self.elapsed = elapsed
        self.diagnosis = diagnosis if diagnosis is not None else getattr(
            error, "diagnosis", None
        )


__all__ = [
    "ReproError",
    "BudgetExhausted",
    "Cancelled",
    "ChaseNonTermination",
    "FaultInjected",
    "WorkerKilled",
    "BatchItemError",
]
